//! Atomic service checkpoints.
//!
//! A checkpoint captures everything the engine needs to reconstruct a service without
//! replaying the whole WAL: the per-shard live edge sets (each shard's clustering state
//! is a pure function of its live weighted edges), the router's `AssignmentTable`, the
//! covered vertex count, the publish revision, and the WAL LSN up to which the capture is
//! complete. Files are named `ckpt-<lsn>.bin` and written with the classic atomic
//! protocol: write to a temp file, `fdatasync` it, rename into place, fsync the
//! directory. A reader therefore either sees the complete new checkpoint or the previous
//! state — never a half-written file under its final name.
//!
//! [`CheckpointStore::load_newest_valid`] walks checkpoints newest-first and returns the
//! first one that decodes and checksums cleanly, counting (not failing on) corrupt newer
//! ones. The store retains the **two** newest checkpoints on disk so that a corrupt
//! newest still leaves a valid fallback; correspondingly, WAL reclamation is driven by
//! the *older* retained checkpoint's LSN, keeping every record the fallback would need.

use crate::codec::{put_f64, put_u32, put_u64, Reader};
use crate::{crc32, DurableError};
use dynsld_forest::{VertexId, Weight};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 8] = b"DCKPT001";

/// One shard engine's durable state: its live weighted edge set, sorted by `(u, v)`.
///
/// Sorted order makes restoration deterministic: re-inserting the edges in this order
/// into a fresh engine reproduces labels and member lists bit-identically, because the
/// clustering is a pure function of the live edge set under the engine's total
/// tie-breaking order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardCheckpoint {
    /// Live edges as `(u, v, weight)` with `u < v`, sorted ascending.
    pub edges: Vec<(VertexId, VertexId, Weight)>,
}

/// A full durable snapshot of a `ClusterService`.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Every WAL record with LSN ≤ this is reflected in the captured state.
    pub last_lsn: u64,
    /// The publish revision at capture time; recovery republishes at `revision + 1` so
    /// cached validators held by subscribers from before the crash never match.
    pub revision: u64,
    /// Number of vertices the service covered.
    pub vertices: u64,
    /// The raw `AssignmentTable` (`u32::MAX` = unassigned) for stateful partitioners;
    /// `None` for pure partitioners, which need no restored routing state.
    pub assignments: Option<Vec<u32>>,
    /// Per-shard engine state, indexed by engine slot (routed shards then spill).
    pub shards: Vec<ShardCheckpoint>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.last_lsn);
        put_u64(&mut payload, self.revision);
        put_u64(&mut payload, self.vertices);
        match &self.assignments {
            None => payload.push(0),
            Some(raw) => {
                payload.push(1);
                put_u64(&mut payload, raw.len() as u64);
                for &s in raw {
                    put_u32(&mut payload, s);
                }
            }
        }
        put_u64(&mut payload, self.shards.len() as u64);
        for shard in &self.shards {
            put_u64(&mut payload, shard.edges.len() as u64);
            for &(u, v, w) in &shard.edges {
                put_u32(&mut payload, u.0);
                put_u32(&mut payload, v.0);
                put_f64(&mut payload, w);
            }
        }
        let mut buf = Vec::with_capacity(CKPT_MAGIC.len() + 4 + payload.len());
        buf.extend_from_slice(CKPT_MAGIC);
        put_u32(&mut buf, crc32(&payload));
        buf.extend_from_slice(&payload);
        buf
    }

    fn decode(bytes: &[u8], path: &Path) -> Result<Checkpoint, DurableError> {
        let corrupt = |detail: String| DurableError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        if bytes.len() < CKPT_MAGIC.len() + 4 {
            return Err(corrupt("file shorter than its header".into()));
        }
        if &bytes[..8] != CKPT_MAGIC {
            return Err(corrupt("bad checkpoint magic".into()));
        }
        let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let payload = &bytes[12..];
        if crc32(payload) != crc {
            return Err(corrupt("checksum mismatch".into()));
        }
        let mut r = Reader::new(payload, path);
        let last_lsn = r.u64("last_lsn")?;
        let revision = r.u64("revision")?;
        let vertices = r.u64("vertices")?;
        let assignments = match r.u8("assignments flag")? {
            0 => None,
            1 => {
                let n = r.u64("assignments length")? as usize;
                if n > payload.len() {
                    return Err(corrupt(format!("assignment count {n} exceeds payload")));
                }
                let mut raw = Vec::with_capacity(n);
                for _ in 0..n {
                    raw.push(r.u32("assignment entry")?);
                }
                Some(raw)
            }
            f => return Err(corrupt(format!("bad assignments flag {f}"))),
        };
        let num_shards = r.u64("shard count")? as usize;
        if num_shards > payload.len() {
            return Err(corrupt(format!("shard count {num_shards} exceeds payload")));
        }
        let mut shards = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let n = r.u64("edge count")? as usize;
            if n > payload.len() {
                return Err(corrupt(format!("edge count {n} exceeds payload")));
            }
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let u = VertexId(r.u32("edge u")?);
                let v = VertexId(r.u32("edge v")?);
                let w = r.f64("edge weight")?;
                edges.push((u, v, w));
            }
            shards.push(ShardCheckpoint { edges });
        }
        r.trailing("checkpoint")?;
        Ok(Checkpoint {
            last_lsn,
            revision,
            vertices,
            assignments,
            shards,
        })
    }
}

/// What [`CheckpointStore::load_newest_valid`] found.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// The newest checkpoint that decoded cleanly, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Newer checkpoints skipped because they failed to decode or checksum.
    pub corrupt_skipped: u64,
}

/// How many checkpoints [`CheckpointStore::write`] retains on disk.
const RETAIN: usize = 2;

/// The checkpoint directory manager. Shares its directory with the WAL segments.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn ckpt_path(dir: &Path, lsn: u64) -> PathBuf {
    dir.join(format!("ckpt-{lsn:020}.bin"))
}

fn parse_ckpt_lsn(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

impl CheckpointStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: &Path) -> Result<CheckpointStore, DurableError> {
        fs::create_dir_all(dir).map_err(DurableError::Io)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
        })
    }

    fn lsns_desc(&self) -> Result<Vec<u64>, DurableError> {
        let mut lsns: Vec<u64> = fs::read_dir(&self.dir)
            .map_err(DurableError::Io)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_ckpt_lsn(&e.file_name().to_string_lossy()))
            .collect();
        lsns.sort_unstable_by(|a, b| b.cmp(a));
        Ok(lsns)
    }

    fn write_atomic(&self, lsn: u64, bytes: &[u8]) -> Result<(), DurableError> {
        let tmp = self.dir.join(format!(".ckpt-tmp-{lsn}"));
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(DurableError::Io)?;
        f.write_all(bytes).map_err(DurableError::Io)?;
        f.sync_data().map_err(DurableError::Io)?;
        drop(f);
        fs::rename(&tmp, ckpt_path(&self.dir, lsn)).map_err(DurableError::Io)?;
        // fsync the directory so the rename itself is durable.
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(DurableError::Io)?;
        Ok(())
    }

    /// Writes `ckpt` atomically, prunes to the `RETAIN` newest checkpoints, and returns
    /// the LSN below which WAL segments are reclaimable — the *oldest retained*
    /// checkpoint's `last_lsn`, so a fallback past a future corrupt newest checkpoint
    /// still finds the WAL tail it needs.
    pub fn write(&self, ckpt: &Checkpoint) -> Result<u64, DurableError> {
        self.write_atomic(ckpt.last_lsn, &ckpt.encode())?;
        let lsns = self.lsns_desc()?;
        for &old in lsns.iter().skip(RETAIN) {
            fs::remove_file(ckpt_path(&self.dir, old)).map_err(DurableError::Io)?;
        }
        Ok(*lsns.iter().take(RETAIN).next_back().unwrap_or(&0))
    }

    /// Fault-injection hook: writes `ckpt` through the same atomic path but with its
    /// payload bit-flipped mid-way — the durable imprint of a checkpoint whose content
    /// was damaged (or a crash landed between payload write and checksum truth). The
    /// store does **not** prune or authorize WAL reclamation for a corrupt write, and
    /// recovery must fall back past it.
    pub fn write_corrupt(&self, ckpt: &Checkpoint) -> Result<(), DurableError> {
        let mut bytes = ckpt.encode();
        let mid = CKPT_MAGIC.len() + 4 + (bytes.len() - CKPT_MAGIC.len() - 4) / 2;
        bytes[mid] ^= 0xFF;
        self.write_atomic(ckpt.last_lsn, &bytes)
    }

    /// Loads the newest checkpoint that decodes cleanly, skipping (and counting) corrupt
    /// newer ones. Returns an empty report when no checkpoint exists at all.
    pub fn load_newest_valid(&self) -> Result<LoadReport, DurableError> {
        let mut report = LoadReport::default();
        for lsn in self.lsns_desc()? {
            let path = ckpt_path(&self.dir, lsn);
            let bytes = fs::read(&path).map_err(DurableError::Io)?;
            match Checkpoint::decode(&bytes, &path) {
                Ok(ckpt) => {
                    report.checkpoint = Some(ckpt);
                    return Ok(report);
                }
                Err(_) => report.corrupt_skipped += 1,
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dynsld-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(lsn: u64) -> Checkpoint {
        Checkpoint {
            last_lsn: lsn,
            revision: 3 * lsn,
            vertices: 16,
            assignments: Some(vec![0, 1, u32::MAX, 1]),
            shards: vec![
                ShardCheckpoint {
                    edges: vec![
                        (VertexId(0), VertexId(1), 1.5),
                        (VertexId(1), VertexId(2), -0.5),
                    ],
                },
                ShardCheckpoint { edges: vec![] },
            ],
        }
    }

    #[test]
    fn write_then_load_roundtrips() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let empty = store.load_newest_valid().unwrap();
        assert!(empty.checkpoint.is_none());
        assert_eq!(empty.corrupt_skipped, 0);

        let ckpt = sample(12);
        store.write(&ckpt).unwrap();
        let report = store.load_newest_valid().unwrap();
        assert_eq!(report.checkpoint, Some(ckpt));
        assert_eq!(report.corrupt_skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retains_two_and_reclaim_lsn_tracks_the_older() {
        let dir = tmpdir("retain");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.write(&sample(5)).unwrap(), 5);
        assert_eq!(
            store.write(&sample(9)).unwrap(),
            5,
            "older retained drives reclaim"
        );
        assert_eq!(store.write(&sample(14)).unwrap(), 9);
        let on_disk = store.lsns_desc().unwrap();
        assert_eq!(on_disk, vec![14, 9], "only the two newest survive");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        let good = sample(5);
        store.write(&good).unwrap();
        store.write_corrupt(&sample(9)).unwrap();
        let report = store.load_newest_valid().unwrap();
        assert_eq!(report.corrupt_skipped, 1);
        assert_eq!(report.checkpoint, Some(good));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pure_partitioner_checkpoint_has_no_assignments() {
        let dir = tmpdir("pure");
        let store = CheckpointStore::open(&dir).unwrap();
        let ckpt = Checkpoint {
            assignments: None,
            ..sample(2)
        };
        store.write(&ckpt).unwrap();
        let report = store.load_newest_valid().unwrap();
        assert_eq!(report.checkpoint, Some(ckpt));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_temp_files_are_ignored() {
        let dir = tmpdir("tmpfiles");
        let store = CheckpointStore::open(&dir).unwrap();
        store.write(&sample(4)).unwrap();
        // A crash between temp write and rename leaves this behind.
        fs::write(dir.join(".ckpt-tmp-99"), b"half written garbage").unwrap();
        let report = store.load_newest_valid().unwrap();
        assert_eq!(report.checkpoint, Some(sample(4)));
        assert_eq!(report.corrupt_skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
