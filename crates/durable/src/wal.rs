//! The segmented write-ahead log.
//!
//! ## On-disk layout
//!
//! A WAL is a directory of segment files named `wal-<seq>.log` with monotonically
//! increasing decimal `<seq>`. Each segment is:
//!
//! ```text
//! +----------------+-------------------+----------------------------------+
//! | magic "DWALSEG1" (8 bytes)         | first_lsn (u64 LE)               |
//! +----------------+-------------------+----------------------------------+
//! | frame | frame | frame | ...                                           |
//! +---------------------------------------------------------------------- +
//! ```
//!
//! and each frame is `len:u32 LE | crc32:u32 LE | payload`, where `crc32` covers the
//! payload only and `len` is the payload length. Records carry no explicit LSN: a
//! segment's records are numbered consecutively from its header's `first_lsn`, and the
//! engine assigns LSNs at append time in exactly that order.
//!
//! ## Torn tails vs corruption
//!
//! A crash mid-append leaves a *prefix* of a frame at the end of the newest segment (or a
//! sub-header-size newest segment, if the crash hit a rotation). [`Wal::open`] detects
//! both shapes, truncates them away, counts them in
//! [`WalOpenReport::torn_tails_truncated`], and carries on — the lost record was never
//! acknowledged as durable. The same damage anywhere *before* the tail cannot be
//! explained by a crash and is reported as [`DurableError::Corrupt`] instead.

use crate::codec::{put_f64, put_u32, put_u64, Reader};
use crate::{crc32, DurableError, FsyncPolicy};
use dynsld_forest::{GraphUpdate, VertexId};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const SEGMENT_MAGIC: &[u8; 8] = b"DWALSEG1";
const SEGMENT_HEADER_LEN: u64 = 16;
const FRAME_HEADER_LEN: usize = 8;
/// Upper bound on a single frame payload; anything larger mid-file is corruption, not a
/// record (real payloads are ≤ 32 bytes).
const MAX_PAYLOAD_LEN: u32 = 1 << 20;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_REWEIGHT: u8 = 3;
const TAG_GROW: u8 = 4;

/// One durable record in the routed event stream.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A graph update, logged at routing time before it reaches any shard engine.
    Event(GraphUpdate),
    /// A vertex-set growth (`ClusterService::add_vertices(k)`).
    Grow(u64),
}

impl WalRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Event(GraphUpdate::Insert { u, v, weight }) => {
                buf.push(TAG_INSERT);
                put_u32(buf, u.0);
                put_u32(buf, v.0);
                put_f64(buf, *weight);
            }
            WalRecord::Event(GraphUpdate::Delete { u, v }) => {
                buf.push(TAG_DELETE);
                put_u32(buf, u.0);
                put_u32(buf, v.0);
            }
            WalRecord::Event(GraphUpdate::Reweight { u, v, weight }) => {
                buf.push(TAG_REWEIGHT);
                put_u32(buf, u.0);
                put_u32(buf, v.0);
                put_f64(buf, *weight);
            }
            WalRecord::Grow(k) => {
                buf.push(TAG_GROW);
                put_u64(buf, *k);
            }
        }
    }

    fn decode(payload: &[u8], path: &Path) -> Result<WalRecord, DurableError> {
        let mut r = Reader::new(payload, path);
        let rec = match r.u8("record tag")? {
            TAG_INSERT => WalRecord::Event(GraphUpdate::Insert {
                u: VertexId(r.u32("insert u")?),
                v: VertexId(r.u32("insert v")?),
                weight: r.f64("insert weight")?,
            }),
            TAG_DELETE => WalRecord::Event(GraphUpdate::Delete {
                u: VertexId(r.u32("delete u")?),
                v: VertexId(r.u32("delete v")?),
            }),
            TAG_REWEIGHT => WalRecord::Event(GraphUpdate::Reweight {
                u: VertexId(r.u32("reweight u")?),
                v: VertexId(r.u32("reweight v")?),
                weight: r.f64("reweight weight")?,
            }),
            TAG_GROW => WalRecord::Grow(r.u64("grow count")?),
            tag => {
                return Err(DurableError::Corrupt {
                    path: path.to_path_buf(),
                    detail: format!("unknown WAL record tag {tag}"),
                })
            }
        };
        r.trailing("WAL record")?;
        Ok(rec)
    }

    fn frame(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(24);
        self.encode(&mut payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Tuning knobs for a [`Wal`].
#[derive(Copy, Clone, Debug)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one reaches this many bytes.
    pub segment_bytes: u64,
    /// When appended records are forced to stable storage.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::default(),
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct WalOpenReport {
    /// Every decodable record, in LSN order, paired with its LSN.
    pub records: Vec<(u64, WalRecord)>,
    /// Number of torn tails truncated away (a partial final frame, or a sub-header
    /// newest segment left by a crash mid-rotation).
    pub torn_tails_truncated: u64,
}

#[derive(Debug)]
struct SegmentMeta {
    path: PathBuf,
    first_lsn: u64,
    /// Number of complete records in the segment. Only final for sealed segments; for the
    /// active segment it is kept up to date on every append.
    records: u64,
}

/// A segmented, CRC-framed write-ahead log. See the module-level docs for the format.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    options: WalOptions,
    segments: Vec<SegmentMeta>,
    /// Append handle + byte length of the newest segment, if one is open for writing.
    active: Option<(File, u64)>,
    next_lsn: u64,
    next_seq: u64,
    records_appended: u64,
    bytes_written: u64,
    dirty: bool,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl Wal {
    /// Opens (creating the directory if needed) the WAL in `dir`, recovering every intact
    /// record and truncating a torn tail on the newest segment.
    pub fn open(dir: &Path, options: WalOptions) -> Result<(Wal, WalOpenReport), DurableError> {
        fs::create_dir_all(dir).map_err(DurableError::Io)?;
        let mut seqs: Vec<u64> = fs::read_dir(dir)
            .map_err(DurableError::Io)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_seq(&e.file_name().to_string_lossy()))
            .collect();
        seqs.sort_unstable();

        let mut report = WalOpenReport::default();
        let mut segments = Vec::with_capacity(seqs.len());
        let mut next_lsn = 1u64;
        let num = seqs.len();
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(dir, seq);
            let is_last = i + 1 == num;
            let bytes = fs::read(&path).map_err(DurableError::Io)?;
            if bytes.len() < SEGMENT_HEADER_LEN as usize {
                // A crash during rotation can leave a short newest segment behind.
                if is_last {
                    fs::remove_file(&path).map_err(DurableError::Io)?;
                    report.torn_tails_truncated += 1;
                    continue;
                }
                return Err(DurableError::Corrupt {
                    path,
                    detail: "segment shorter than its header".into(),
                });
            }
            if &bytes[..8] != SEGMENT_MAGIC {
                return Err(DurableError::Corrupt {
                    path,
                    detail: "bad segment magic".into(),
                });
            }
            let first_lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            let mut pos = SEGMENT_HEADER_LEN as usize;
            let mut records = 0u64;
            let mut torn_at = None;
            while pos < bytes.len() {
                let frame_ok = (|| -> Option<(WalRecord, usize)> {
                    let header = bytes.get(pos..pos + FRAME_HEADER_LEN)?;
                    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
                    if len > MAX_PAYLOAD_LEN {
                        return None;
                    }
                    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
                    let payload =
                        bytes.get(pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len as usize)?;
                    if crc32(payload) != crc {
                        return None;
                    }
                    let rec = WalRecord::decode(payload, &path).ok()?;
                    Some((rec, FRAME_HEADER_LEN + len as usize))
                })();
                match frame_ok {
                    Some((rec, consumed)) => {
                        report.records.push((first_lsn + records, rec));
                        records += 1;
                        pos += consumed;
                    }
                    None => {
                        torn_at = Some(pos);
                        break;
                    }
                }
            }
            if let Some(cut) = torn_at {
                if !is_last {
                    return Err(DurableError::Corrupt {
                        path,
                        detail: format!("undecodable frame at byte {cut} before the log tail"),
                    });
                }
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(DurableError::Io)?;
                f.set_len(cut as u64).map_err(DurableError::Io)?;
                f.sync_data().map_err(DurableError::Io)?;
                report.torn_tails_truncated += 1;
            }
            next_lsn = first_lsn + records;
            segments.push(SegmentMeta {
                path,
                first_lsn,
                records,
            });
        }

        // LSN continuity across segments: each segment must start where the previous one
        // stopped, or a segment has gone missing.
        for w in segments.windows(2) {
            let expect = w[0].first_lsn + w[0].records;
            if w[1].first_lsn != expect {
                return Err(DurableError::Corrupt {
                    path: w[1].path.clone(),
                    detail: format!(
                        "segment starts at lsn {} but the previous one ends at {expect}",
                        w[1].first_lsn
                    ),
                });
            }
        }

        let next_seq = seqs.last().map_or(1, |s| s + 1);
        // Reopen the newest segment for appending; its post-truncation length is the
        // rotation accumulator.
        let active = match segments.last() {
            Some(meta) => {
                let f = OpenOptions::new()
                    .append(true)
                    .open(&meta.path)
                    .map_err(DurableError::Io)?;
                let len = f.metadata().map_err(DurableError::Io)?.len();
                Some((f, len))
            }
            None => None,
        };
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                options,
                segments,
                active,
                next_lsn,
                next_seq,
                records_appended: 0,
                bytes_written: 0,
                dirty: false,
            },
            report,
        ))
    }

    /// When the WAL is empty but a checkpoint proves records up to `lsn` once existed
    /// (and were reclaimed), fast-forwards the LSN counter so new appends continue the
    /// sequence instead of reusing old numbers.
    pub fn ensure_next_lsn(&mut self, lsn: u64) {
        if self.segments.is_empty() && self.next_lsn < lsn {
            self.next_lsn = lsn;
        }
    }

    /// The LSN of the most recently appended (or recovered) record; 0 when none exist.
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Records acknowledged by [`append`](Self::append) since open (recovered records are
    /// not counted — they were acknowledged by a previous process).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Frame bytes written since open, including segment headers.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn rotate_if_needed(&mut self) -> Result<(), DurableError> {
        let needs_new = match &self.active {
            None => true,
            Some((_, len)) => *len >= self.options.segment_bytes,
        };
        if !needs_new {
            return Ok(());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = segment_path(&self.dir, seq);
        let mut f = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(DurableError::Io)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(SEGMENT_MAGIC);
        put_u64(&mut header, self.next_lsn);
        f.write_all(&header).map_err(DurableError::Io)?;
        self.bytes_written += header.len() as u64;
        self.segments.push(SegmentMeta {
            path,
            first_lsn: self.next_lsn,
            records: 0,
        });
        self.active = Some((f, SEGMENT_HEADER_LEN));
        Ok(())
    }

    /// Appends a record and returns its LSN. Durability depends on the
    /// [`FsyncPolicy`]: under `EveryRecord` the record is stable on return; under
    /// `EveryDrain` it is stable after the next [`sync`](Self::sync).
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, DurableError> {
        self.rotate_if_needed()?;
        let frame = record.frame();
        let (f, len) = self
            .active
            .as_mut()
            .expect("rotate_if_needed opened a segment");
        f.write_all(&frame).map_err(DurableError::Io)?;
        *len += frame.len() as u64;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.segments
            .last_mut()
            .expect("active segment has a meta entry")
            .records += 1;
        self.records_appended += 1;
        self.bytes_written += frame.len() as u64;
        self.dirty = true;
        if self.options.fsync == FsyncPolicy::EveryRecord {
            self.sync()?;
        }
        Ok(lsn)
    }

    /// Fault-injection hook: writes a deliberately incomplete frame for `record` —
    /// exactly what a crash mid-append leaves behind — and flushes it. The record is
    /// *not* acknowledged (no LSN is assigned, no counters move), and the caller must
    /// stop appending afterwards, as a real crashed process would; the next
    /// [`open`](Self::open) truncates the partial frame away.
    pub fn append_torn(&mut self, record: &WalRecord) -> Result<(), DurableError> {
        self.rotate_if_needed()?;
        let frame = record.frame();
        // Keep the full frame header plus half the payload: enough bytes that the frame
        // looks started, never enough that it verifies.
        let cut = FRAME_HEADER_LEN + (frame.len() - FRAME_HEADER_LEN) / 2;
        debug_assert!(cut < frame.len());
        let (f, len) = self
            .active
            .as_mut()
            .expect("rotate_if_needed opened a segment");
        f.write_all(&frame[..cut]).map_err(DurableError::Io)?;
        *len += cut as u64;
        f.sync_data().map_err(DurableError::Io)?;
        Ok(())
    }

    /// Forces everything appended so far to stable storage, regardless of policy.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if let Some((f, _)) = &self.active {
            f.sync_data().map_err(DurableError::Io)?;
        }
        self.dirty = false;
        Ok(())
    }

    /// End-of-drain hook: syncs exactly when the policy is
    /// [`EveryDrain`](FsyncPolicy::EveryDrain) and unsynced appends exist.
    pub fn sync_drain(&mut self) -> Result<(), DurableError> {
        if self.options.fsync == FsyncPolicy::EveryDrain && self.dirty {
            self.sync()?;
        }
        Ok(())
    }

    /// Deletes sealed segments whose every record has LSN ≤ `lsn` (i.e. is covered by a
    /// durable checkpoint). The active segment is never deleted. Returns the number of
    /// segments removed.
    pub fn reclaim_below(&mut self, lsn: u64) -> Result<u64, DurableError> {
        let mut removed = 0u64;
        while self.segments.len() > 1 {
            let last_covered = self.segments[1].first_lsn - 1;
            if last_covered > lsn {
                break;
            }
            let meta = self.segments.remove(0);
            fs::remove_file(&meta.path).map_err(DurableError::Io)?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Number of segment files currently on disk.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dynsld-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Event(GraphUpdate::Insert {
                u: VertexId(0),
                v: VertexId(1),
                weight: 2.5,
            }),
            WalRecord::Event(GraphUpdate::Reweight {
                u: VertexId(0),
                v: VertexId(1),
                weight: -1.0,
            }),
            WalRecord::Grow(7),
            WalRecord::Event(GraphUpdate::Delete {
                u: VertexId(0),
                v: VertexId(1),
            }),
        ]
    }

    #[test]
    fn append_then_reopen_roundtrips_records_and_lsns() {
        let dir = tmpdir("roundtrip");
        let (mut wal, report) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(wal.last_lsn(), 0);
        let recs = sample_records();
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(wal.append(r).unwrap(), i as u64 + 1);
        }
        wal.sync().unwrap();
        assert_eq!(wal.records_appended(), 4);
        assert!(wal.bytes_written() > 0);
        drop(wal);

        let (wal, report) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(report.torn_tails_truncated, 0);
        assert_eq!(
            report.records,
            recs.iter()
                .cloned()
                .enumerate()
                .map(|(i, r)| (i as u64 + 1, r))
                .collect::<Vec<_>>()
        );
        assert_eq!(wal.last_lsn(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        let recs = sample_records();
        wal.append(&recs[0]).unwrap();
        wal.append(&recs[1]).unwrap();
        wal.append_torn(&recs[2]).unwrap();
        drop(wal);

        let (mut wal, report) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(report.torn_tails_truncated, 1);
        assert_eq!(report.records.len(), 2);
        assert_eq!(wal.last_lsn(), 2);
        // The log keeps working after truncation: the next append takes LSN 3 and
        // survives another reopen.
        assert_eq!(wal.append(&recs[3]).unwrap(), 3);
        wal.sync().unwrap();
        drop(wal);
        let (_, report) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.torn_tails_truncated, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_before_the_tail_is_corruption() {
        let dir = tmpdir("corrupt");
        let small = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, small).unwrap();
        for r in sample_records() {
            for _ in 0..4 {
                if let WalRecord::Event(_) = &r {
                    wal.append(&r).unwrap();
                }
            }
        }
        wal.sync().unwrap();
        assert!(wal.num_segments() > 1, "need multiple segments");
        let first = segment_path(&dir, 1);
        drop(wal);
        // Flip a payload byte in the middle of the FIRST (sealed) segment.
        let mut bytes = fs::read(&first).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&first, &bytes).unwrap();
        match Wal::open(&dir, small) {
            Err(DurableError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_reclaim_drop_covered_segments() {
        let dir = tmpdir("reclaim");
        let small = WalOptions {
            segment_bytes: 80,
            ..WalOptions::default()
        };
        let (mut wal, _) = Wal::open(&dir, small).unwrap();
        let rec = WalRecord::Event(GraphUpdate::Insert {
            u: VertexId(1),
            v: VertexId(2),
            weight: 1.0,
        });
        let mut last = 0;
        for _ in 0..20 {
            last = wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        let before = wal.num_segments();
        assert!(before > 2);
        // Nothing below LSN 1 -> nothing reclaimed.
        assert_eq!(wal.reclaim_below(0).unwrap(), 0);
        let removed = wal.reclaim_below(last).unwrap();
        assert_eq!(removed as usize, before - 1, "all sealed segments covered");
        assert_eq!(wal.num_segments(), 1);
        drop(wal);
        // Reopen still sees the uncovered tail records.
        let (wal, report) = Wal::open(&dir, small).unwrap();
        assert!(!report.records.is_empty());
        assert_eq!(report.records.last().unwrap().0, last);
        assert_eq!(wal.last_lsn(), last);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ensure_next_lsn_only_applies_to_an_empty_log() {
        let dir = tmpdir("ensure");
        let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.ensure_next_lsn(41);
        let rec = WalRecord::Grow(1);
        assert_eq!(wal.append(&rec).unwrap(), 41);
        // With segments on disk the recovered LSN sequence is authoritative.
        wal.ensure_next_lsn(1000);
        assert_eq!(wal.append(&rec).unwrap(), 42);
        fs::remove_dir_all(&dir).unwrap();
    }
}
