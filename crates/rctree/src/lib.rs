//! # dynsld-rctree — rake–compress trees via parallel tree contraction
//!
//! Rake–compress (RC) trees (Acar et al.; Section 2.4 of the paper) represent a forest by the
//! trace of a parallel tree-contraction process: in every round a maximal independent set of
//! degree-1 vertices *rake* into their neighbour and degree-2 vertices *compress*, and the
//! clusters formed by these contractions are arranged into a tree of height `O(log n)` whose
//! leaves are the original vertices and edges.
//!
//! This crate provides
//!
//! * [`RcForest::build`] — parallel tree contraction (randomized independent sets, rayon-parallel
//!   round evaluation) producing the cluster hierarchy with per-cluster aggregates (vertex
//!   count, heaviest edge, cluster-path length for binary clusters);
//! * connectivity / component-size / heaviest-edge queries in `O(1)` after `O(log n)`-height
//!   construction, plus parallel batch connectivity queries (Table 1);
//! * structural accessors (`height`, `num_rounds`, cluster inspection) used by the Table 1
//!   benchmark;
//! * [`RcForest::link`] / [`RcForest::cut`] — dynamic updates realized by **re-contracting the
//!   affected component(s)** in parallel.
//!
//! **Substitution note (DESIGN.md, substitution 3).** The paper relies on the change-propagation
//! RC trees of Anderson–Blelloch, whose links/cuts cost `O(log n)` and whose batch operations
//! are work-efficient; re-contraction preserves all query semantics but costs work proportional
//! to the affected component per update. For this reason the *dynamic* DynSLD algorithms in
//! `dynsld` use the link-cut-tree and Euler-tour-tree substrates of `dynsld-dyntree` for their
//! per-update dynamic-tree needs, while this crate serves as the faithful RC-tree reference for
//! construction, queries and the Table 1 measurements.

#![warn(missing_docs)]

use dynsld_forest::{EdgeId, Forest, VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::HashMap;

/// Identifier of an RC-tree cluster.
pub type ClusterId = usize;

/// The kind of an RC-tree cluster.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClusterKind {
    /// A leaf cluster representing one original vertex.
    VertexLeaf,
    /// A leaf cluster representing one original edge.
    EdgeLeaf,
    /// A unary cluster formed by the *rake* of a degree-1 vertex: represents a subtree hanging
    /// off its single boundary vertex.
    Unary,
    /// A binary cluster formed by the *compress* of a degree-2 vertex: represents the path
    /// between its two boundary vertices plus everything hanging off that path.
    Binary,
    /// The root cluster of a fully contracted component.
    Root,
}

/// One cluster of the RC tree.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// What kind of contraction formed this cluster.
    pub kind: ClusterKind,
    /// Parent cluster, if any (roots have none).
    pub parent: Option<ClusterId>,
    /// Child clusters combined into this cluster.
    pub children: Vec<ClusterId>,
    /// Boundary vertices (1 for unary clusters, 2 for binary clusters, 0 for roots/leaves of
    /// vertex kind, 2 for edge leaves).
    pub boundary: [Option<VertexId>; 2],
    /// Number of original vertices contained in the cluster.
    pub vertex_count: usize,
    /// The heaviest original edge contained in the cluster, if any.
    pub max_edge: Option<(Weight, EdgeId)>,
    /// Number of edges on the cluster path (binary clusters only).
    pub path_len: usize,
    /// Contraction round at which the cluster was formed (leaves are round 0).
    pub round: usize,
}

/// A rake–compress forest over a snapshot of a weighted forest.
#[derive(Clone, Debug)]
pub struct RcForest {
    forest: Forest,
    clusters: Vec<Cluster>,
    leaf_of_vertex: Vec<ClusterId>,
    leaf_of_edge: HashMap<EdgeId, ClusterId>,
    root_of_vertex: Vec<ClusterId>,
    rounds: usize,
    seed: u64,
}

impl RcForest {
    /// Builds the RC forest of `forest` by parallel tree contraction.
    pub fn build(forest: Forest) -> Self {
        Self::build_with_seed(forest, 0xacab_5eed)
    }

    /// Builds with an explicit seed for the contraction priorities (reproducibility).
    pub fn build_with_seed(forest: Forest, seed: u64) -> Self {
        let n = forest.num_vertices();
        let mut rc = RcForest {
            forest,
            clusters: Vec::new(),
            leaf_of_vertex: vec![usize::MAX; n],
            leaf_of_edge: HashMap::new(),
            root_of_vertex: vec![usize::MAX; n],
            rounds: 0,
            seed,
        };
        let all: Vec<VertexId> = (0..n).map(VertexId::from_index).collect();
        rc.contract_vertices(&all);
        rc
    }

    /// The underlying forest snapshot.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Number of contraction rounds of the last (re-)contraction.
    pub fn num_rounds(&self) -> usize {
        self.rounds
    }

    /// Number of clusters (including leaves).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Access to a cluster.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id]
    }

    /// Height of the RC tree (maximum number of parent hops from a leaf cluster to its root);
    /// `O(log n)` with high probability.
    pub fn height(&self) -> usize {
        let mut best = 0;
        for &leaf in self.leaf_of_vertex.iter().chain(self.leaf_of_edge.values()) {
            let mut depth = 0;
            let mut cur = leaf;
            while let Some(p) = self.clusters[cur].parent {
                depth += 1;
                cur = p;
            }
            best = best.max(depth);
        }
        best
    }

    /// The root cluster of the component containing `v`.
    pub fn root_cluster(&self, v: VertexId) -> ClusterId {
        self.root_of_vertex[v.index()]
    }

    /// Returns true if `u` and `v` are in the same component.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.root_of_vertex[u.index()] == self.root_of_vertex[v.index()]
    }

    /// Parallel batch connectivity queries (Table 1, batch-parallel column).
    pub fn batch_connected(&self, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        pairs
            .par_iter()
            .map(|&(u, v)| self.connected(u, v))
            .collect()
    }

    /// Number of vertices in the component containing `v`.
    pub fn component_size(&self, v: VertexId) -> usize {
        self.clusters[self.root_of_vertex[v.index()]].vertex_count
    }

    /// The heaviest edge in the component containing `v`, if the component has any edge.
    pub fn component_max_edge(&self, v: VertexId) -> Option<(Weight, EdgeId)> {
        self.clusters[self.root_of_vertex[v.index()]].max_edge
    }

    /// Inserts the edge `(u, v)` and re-contracts the merged component.
    ///
    /// # Panics
    /// Panics if `u` and `v` are already connected.
    pub fn link(&mut self, u: VertexId, v: VertexId, weight: Weight) -> EdgeId {
        assert!(!self.connected(u, v), "link would create a cycle");
        let e = self.forest.insert_edge(u, v, weight);
        let members = self.component_vertices_of_forest(u);
        self.contract_vertices(&members);
        e
    }

    /// Deletes edge `e` and re-contracts the two resulting components.
    pub fn cut(&mut self, e: EdgeId) {
        let data = self.forest.delete_edge(e);
        self.leaf_of_edge.remove(&e);
        let side_u = self.component_vertices_of_forest(data.u);
        let side_v = self.component_vertices_of_forest(data.v);
        self.contract_vertices(&side_u);
        self.contract_vertices(&side_v);
    }

    /// Vertices of the forest component containing `v` (walks the forest adjacency).
    fn component_vertices_of_forest(&self, v: VertexId) -> Vec<VertexId> {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![v];
        seen.insert(v);
        let mut out = vec![v];
        while let Some(x) = stack.pop() {
            for (y, _) in self.forest.neighbors(x) {
                if seen.insert(y) {
                    out.push(y);
                    stack.push(y);
                }
            }
        }
        out
    }

    fn new_cluster(&mut self, cluster: Cluster) -> ClusterId {
        let id = self.clusters.len();
        self.clusters.push(cluster);
        id
    }

    fn attach_children(&mut self, parent: ClusterId, children: &[ClusterId]) {
        for &c in children {
            self.clusters[c].parent = Some(parent);
        }
    }

    /// (Re-)contracts the sub-forest induced by `vertices`, creating fresh leaf clusters for the
    /// involved vertices and edges and building the cluster hierarchy bottom-up.
    fn contract_vertices(&mut self, vertices: &[VertexId]) {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ (self.clusters.len() as u64));
        // Fresh leaf clusters.
        for &v in vertices {
            let id = self.new_cluster(Cluster {
                kind: ClusterKind::VertexLeaf,
                parent: None,
                children: Vec::new(),
                boundary: [Some(v), None],
                vertex_count: 1,
                max_edge: None,
                path_len: 0,
                round: 0,
            });
            self.leaf_of_vertex[v.index()] = id;
        }
        // Local adjacency: vertex -> (neighbour, cluster currently representing that super-edge).
        let in_scope: std::collections::HashSet<VertexId> = vertices.iter().copied().collect();
        let mut adj: HashMap<VertexId, Vec<(VertexId, ClusterId)>> = HashMap::new();
        for &v in vertices {
            adj.entry(v).or_default();
        }
        for &v in vertices {
            let incident: Vec<(VertexId, EdgeId, Weight)> = self
                .forest
                .neighbors(v)
                .filter(|&(w, _)| v < w && in_scope.contains(&w))
                .map(|(w, e)| (w, e, self.forest.weight(e)))
                .collect();
            for (w, e, weight) in incident {
                let id = self.new_cluster(Cluster {
                    kind: ClusterKind::EdgeLeaf,
                    parent: None,
                    children: Vec::new(),
                    boundary: [Some(v), Some(w)],
                    vertex_count: 0,
                    max_edge: Some((weight, e)),
                    path_len: 1,
                    round: 0,
                });
                self.leaf_of_edge.insert(e, id);
                adj.get_mut(&v).expect("in scope").push((w, id));
                adj.get_mut(&w).expect("in scope").push((v, id));
            }
        }
        // Unary clusters raked onto each live vertex, waiting to be absorbed.
        let mut pending: HashMap<VertexId, Vec<ClusterId>> = HashMap::new();
        // Random priorities for the independent-set selection.
        let priority: HashMap<VertexId, u64> = vertices.iter().map(|&v| (v, rng.gen())).collect();
        let mut live: Vec<VertexId> = vertices.to_vec();
        let mut round = 0usize;

        while !live.is_empty() {
            round += 1;
            // A vertex is eligible if its current degree is at most 2. Among eligible vertices,
            // contract a maximal independent set: an eligible vertex contracts if no eligible
            // neighbour has a higher priority. (Evaluated in parallel; read-only.)
            let chosen: Vec<VertexId> = live
                .par_iter()
                .copied()
                .filter(|&v| {
                    let nbrs = &adj[&v];
                    if nbrs.len() > 2 {
                        return false;
                    }
                    nbrs.iter()
                        .all(|&(w, _)| adj[&w].len() > 2 || priority[&w] < priority[&v])
                })
                .collect();
            debug_assert!(!chosen.is_empty(), "contraction must make progress");
            for v in chosen {
                let nbrs = adj[&v].clone();
                let vleaf = self.leaf_of_vertex[v.index()];
                let mut children = vec![vleaf];
                children.extend(pending.remove(&v).unwrap_or_default());
                match nbrs.len() {
                    0 => {
                        // Finalize: this vertex is the last of its component.
                        children.extend(nbrs.iter().map(|&(_, c)| c));
                        let agg = self.aggregate(&children);
                        let id = self.new_cluster(Cluster {
                            kind: ClusterKind::Root,
                            parent: None,
                            children: children.clone(),
                            boundary: [None, None],
                            vertex_count: agg.0,
                            max_edge: agg.1,
                            path_len: 0,
                            round,
                        });
                        self.attach_children(id, &children);
                        // Record the component root for every vertex below (done after the loop
                        // via a propagation pass).
                    }
                    1 => {
                        // Rake into the neighbour.
                        let (w, ec) = nbrs[0];
                        children.push(ec);
                        let agg = self.aggregate(&children);
                        let id = self.new_cluster(Cluster {
                            kind: ClusterKind::Unary,
                            parent: None,
                            children: children.clone(),
                            boundary: [Some(w), None],
                            vertex_count: agg.0,
                            max_edge: agg.1,
                            path_len: 0,
                            round,
                        });
                        self.attach_children(id, &children);
                        pending.entry(w).or_default().push(id);
                        // Remove v from w's adjacency.
                        let wadj = adj.get_mut(&w).expect("neighbour in scope");
                        wadj.retain(|&(x, _)| x != v);
                    }
                    2 => {
                        // Compress: the two incident super-edges merge into one.
                        let (w1, ec1) = nbrs[0];
                        let (w2, ec2) = nbrs[1];
                        children.push(ec1);
                        children.push(ec2);
                        let agg = self.aggregate(&children);
                        let path_len = self.clusters[ec1].path_len + self.clusters[ec2].path_len;
                        let id = self.new_cluster(Cluster {
                            kind: ClusterKind::Binary,
                            parent: None,
                            children: children.clone(),
                            boundary: [Some(w1), Some(w2)],
                            vertex_count: agg.0,
                            max_edge: agg.1,
                            path_len,
                            round,
                        });
                        self.attach_children(id, &children);
                        for (a, b) in [(w1, w2), (w2, w1)] {
                            let aadj = adj.get_mut(&a).expect("neighbour in scope");
                            aadj.retain(|&(x, _)| x != v);
                            aadj.push((b, id));
                        }
                    }
                    _ => unreachable!("only degree <= 2 vertices are chosen"),
                }
                adj.remove(&v);
            }
            live.retain(|v| adj.contains_key(v));
        }
        self.rounds = round;
        // Propagate root-cluster ids: for every vertex in scope, walk up from its leaf.
        // (Amortized O(log n) per vertex; executed in parallel.)
        let roots: Vec<(usize, ClusterId)> = vertices
            .par_iter()
            .map(|&v| {
                let mut cur = self.leaf_of_vertex[v.index()];
                while let Some(p) = self.clusters[cur].parent {
                    cur = p;
                }
                (v.index(), cur)
            })
            .collect();
        for (vi, root) in roots {
            self.root_of_vertex[vi] = root;
        }
    }

    fn aggregate(&self, children: &[ClusterId]) -> (usize, Option<(Weight, EdgeId)>) {
        let mut vertices = 0;
        let mut max_edge: Option<(Weight, EdgeId)> = None;
        for &c in children {
            vertices += self.clusters[c].vertex_count;
            if let Some((w, e)) = self.clusters[c].max_edge {
                max_edge = match max_edge {
                    Some((bw, be)) if (bw, be) >= (w, e) => Some((bw, be)),
                    _ => Some((w, e)),
                };
            }
        }
        (vertices, max_edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsld_forest::gen::{self, WeightOrder};
    use dynsld_forest::Dsu;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn check_against_dsu(rc: &RcForest) {
        let forest = rc.forest();
        let mut dsu = Dsu::new(forest.num_vertices());
        for (_, d) in forest.edges() {
            dsu.union(d.u, d.v);
        }
        for a in 0..forest.num_vertices() {
            let a = VertexId::from_index(a);
            assert_eq!(
                rc.component_size(a),
                dsu.set_size(a),
                "size mismatch at {a}"
            );
            for b in [0, forest.num_vertices() / 2, forest.num_vertices() - 1] {
                let b = VertexId::from_index(b);
                assert_eq!(rc.connected(a, b), dsu.connected(a, b));
            }
        }
    }

    #[test]
    fn builds_single_vertex_and_empty_forests() {
        let rc = RcForest::build(Forest::new(1));
        assert_eq!(rc.component_size(v(0)), 1);
        assert_eq!(rc.num_rounds(), 1);
        let rc = RcForest::build(Forest::new(5));
        assert!(!rc.connected(v(0), v(4)));
        assert_eq!(rc.component_size(v(3)), 1);
    }

    #[test]
    fn contraction_of_paths_and_stars() {
        for inst in [
            gen::path(200, WeightOrder::Increasing),
            gen::path(200, WeightOrder::Random(1)),
            gen::star(150),
            gen::caterpillar(20, 6, 2),
            gen::binary_tree(7, 3),
        ] {
            let rc = RcForest::build(inst.build_forest());
            check_against_dsu(&rc);
            assert_eq!(rc.component_size(v(0)), inst.n);
        }
    }

    #[test]
    fn rc_tree_height_is_logarithmic() {
        for (n, inst) in [
            (4096, gen::path(4096, WeightOrder::Random(7))),
            (4095, gen::random_tree(4095, 9)),
        ] {
            let rc = RcForest::build(inst.build_forest());
            let h = rc.height();
            let bound = 6 * (n as f64).log2() as usize + 10;
            assert!(
                h <= bound,
                "RC tree height {h} exceeds O(log n) bound {bound}"
            );
            assert!(rc.num_rounds() <= bound);
        }
    }

    #[test]
    fn component_max_edge_matches_scan() {
        let inst = gen::random_tree(300, 4);
        let rc = RcForest::build(inst.build_forest());
        let expected = rc
            .forest()
            .edges()
            .map(|(e, d)| (d.weight, e))
            .max_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(rc.component_max_edge(v(0)), expected);
        // Isolated vertex has no edge.
        let rc2 = RcForest::build(Forest::new(3));
        assert_eq!(rc2.component_max_edge(v(1)), None);
    }

    #[test]
    fn disjoint_components_have_distinct_roots() {
        let inst = gen::disjoint_random_trees(5, 40, 8);
        let rc = RcForest::build(inst.build_forest());
        check_against_dsu(&rc);
        assert!(!rc.connected(v(0), v(40)));
        assert_eq!(rc.component_size(v(0)), 40);
        let pairs: Vec<(VertexId, VertexId)> = (0..200)
            .map(|i| (v(i % 200), v((i * 7 + 3) % 200)))
            .collect();
        let batch = rc.batch_connected(&pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], rc.connected(a, b));
        }
    }

    #[test]
    fn link_and_cut_recontract_correctly() {
        let inst = gen::disjoint_random_trees(3, 30, 5);
        let mut rc = RcForest::build(inst.build_forest());
        assert!(!rc.connected(v(0), v(35)));
        let e = rc.link(v(0), v(35), 0.5);
        assert!(rc.connected(v(0), v(35)));
        assert_eq!(rc.component_size(v(0)), 60);
        check_against_dsu(&rc);
        rc.cut(e);
        assert!(!rc.connected(v(0), v(35)));
        assert_eq!(rc.component_size(v(0)), 30);
        check_against_dsu(&rc);
        // Cut an interior edge of a path-shaped component.
        let inst = gen::path(50, WeightOrder::Increasing);
        let mut rc = RcForest::build(inst.build_forest());
        let mid = rc.forest().find_edge(v(24), v(25)).unwrap();
        rc.cut(mid);
        assert_eq!(rc.component_size(v(0)), 25);
        assert_eq!(rc.component_size(v(49)), 25);
        check_against_dsu(&rc);
    }

    #[test]
    fn cluster_structure_invariants() {
        let inst = gen::random_tree(500, 13);
        let rc = RcForest::build(inst.build_forest());
        let mut root_count = 0;
        for id in 0..rc.num_clusters() {
            let c = rc.cluster(id);
            match c.kind {
                ClusterKind::Root => {
                    root_count += 1;
                    assert!(c.parent.is_none());
                }
                ClusterKind::VertexLeaf | ClusterKind::EdgeLeaf => {
                    assert!(c.children.is_empty());
                }
                ClusterKind::Unary => assert!(c.boundary[0].is_some() && c.boundary[1].is_none()),
                ClusterKind::Binary => {
                    assert!(c.boundary[0].is_some() && c.boundary[1].is_some());
                    assert!(c.path_len >= 2);
                }
            }
            for &child in &c.children {
                assert_eq!(rc.cluster(child).parent, Some(id));
            }
        }
        assert_eq!(root_count, 1);
        // The root cluster contains every vertex.
        assert_eq!(rc.cluster(rc.root_cluster(v(0))).vertex_count, 500);
    }
}
