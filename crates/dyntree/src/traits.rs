//! The dynamic-forest trait family: the capability surface the DynSLD stack charges to its
//! dynamic-tree substrate, factored out so forest implementations are interchangeable
//! *policies* rather than hard-wired types.
//!
//! The paper charges its update and query costs to an abstract dynamic-tree structure
//! (Section 2.4, Table 1); which concrete structure backs it is an implementation policy.
//! This module splits that surface into three capabilities:
//!
//! * [`DynamicForest`] — the core `link` / `cut` / `connected` contract every backend must
//!   provide. Implementations choose their own node and edge handle types: the
//!   [`LinkCutTree`] addresses nodes by [`LctNodeId`]
//!   and needs no edge handle (`Edge = ()`), while the
//!   [`EulerTourForest`] addresses vertices directly and keys each
//!   edge by an [`EdgeId`].
//! * [`PathOps`] — path aggregates between two nodes: maximum-key node, path length, and
//!   path weight search (the Section 4.1 primitive). Provided by the link-cut tree.
//! * [`ComponentOps`] — whole-component queries: size, representative, and member
//!   iteration, the operations replacement-edge search and cluster reporting need.
//!   Provided by the Euler-tour forest.
//!
//! [`ExpandableForest`] adds uniform construction/growth so generic containers (e.g. the
//! level structure of the HDT-style MSF backend in `dynsld-msf`) can own a dynamically
//! sized family of forests behind a type parameter.

use crate::euler::EulerTourForest;
use crate::lct::{LctNodeId, LinkCutTree};
use dynsld_forest::{EdgeId, RankKey, VertexId};

/// Core dynamic-forest contract: maintain a forest under edge links and cuts, and answer
/// connectivity queries.
///
/// Methods take `&mut self` even for queries because self-adjusting implementations
/// (splay-based link-cut trees) restructure on reads.
pub trait DynamicForest {
    /// Handle addressing a node of the forest.
    type Node: Copy + Eq;
    /// Handle addressing an edge of the forest (`()` when the implementation identifies
    /// edges by their endpoints).
    type Edge: Copy + Eq;

    /// Links the trees containing `u` and `v` with an edge. The endpoints must be in
    /// different trees.
    fn link(&mut self, u: Self::Node, v: Self::Node, edge: Self::Edge);

    /// Cuts the edge `{u, v}` (addressed by endpoints, by handle, or both — whichever the
    /// implementation keys on). The edge must be present.
    fn cut(&mut self, u: Self::Node, v: Self::Node, edge: Self::Edge);

    /// Returns true if `u` and `v` are in the same tree.
    fn connected(&mut self, u: Self::Node, v: Self::Node) -> bool;
}

/// Path aggregates between two nodes of the same tree.
pub trait PathOps: DynamicForest {
    /// The node with the maximum key on the `u`–`v` path, or `None` if no node on the path
    /// carries a key (or the endpoints are disconnected).
    fn path_max(&mut self, u: Self::Node, v: Self::Node) -> Option<Self::Node>;

    /// Number of nodes on the `u`–`v` path (including both endpoints; 0 if disconnected).
    fn path_len(&mut self, u: Self::Node, v: Self::Node) -> usize;

    /// Path weight search (the paper's Definition 4.1 primitive): the node with the
    /// **maximum key strictly below** `key` on the `u`–`v` path, or `None` if every key on
    /// the path is at or above it.
    ///
    /// Precondition (inherited from the spine layout this query serves): every node on the
    /// path carries a key and keys increase monotonically from `u` towards `v`.
    fn path_search_below(
        &mut self,
        u: Self::Node,
        v: Self::Node,
        key: RankKey,
    ) -> Option<Self::Node>;
}

/// Whole-component queries over the forest.
pub trait ComponentOps: DynamicForest {
    /// An identifier of the tree containing `v`, stable while the tree is not relinked:
    /// `component_id(u) == component_id(v)` iff `u` and `v` are connected.
    fn component_id(&mut self, v: Self::Node) -> usize;

    /// Number of nodes in the tree containing `v`.
    fn component_size(&mut self, v: Self::Node) -> usize;

    /// The nodes of the tree containing `v` (implementation-defined order).
    fn component_vertices(&mut self, v: Self::Node) -> Vec<Self::Node>;
}

/// Uniform construction and growth, so generic containers can own families of forests.
pub trait ExpandableForest: DynamicForest {
    /// Creates a forest of `n` isolated nodes. `seed` parameterizes any internal
    /// randomization (ignored by deterministic implementations).
    fn with_nodes(n: usize, seed: u64) -> Self;

    /// Adds `k` isolated nodes with the next consecutive ids.
    fn add_nodes(&mut self, k: usize);
}

impl DynamicForest for EulerTourForest {
    type Node = VertexId;
    type Edge = EdgeId;

    fn link(&mut self, u: VertexId, v: VertexId, edge: EdgeId) {
        EulerTourForest::link(self, u, v, edge);
    }

    fn cut(&mut self, _u: VertexId, _v: VertexId, edge: EdgeId) {
        EulerTourForest::cut(self, edge);
    }

    fn connected(&mut self, u: VertexId, v: VertexId) -> bool {
        EulerTourForest::connected(self, u, v)
    }
}

impl ComponentOps for EulerTourForest {
    fn component_id(&mut self, v: VertexId) -> usize {
        EulerTourForest::component_repr(self, v)
    }

    fn component_size(&mut self, v: VertexId) -> usize {
        EulerTourForest::component_size(self, v)
    }

    fn component_vertices(&mut self, v: VertexId) -> Vec<VertexId> {
        EulerTourForest::component_vertices(self, v)
    }
}

impl ExpandableForest for EulerTourForest {
    fn with_nodes(n: usize, seed: u64) -> Self {
        EulerTourForest::with_seed(n, seed)
    }

    fn add_nodes(&mut self, k: usize) {
        self.add_vertices(k);
    }
}

impl DynamicForest for LinkCutTree {
    type Node = LctNodeId;
    type Edge = ();

    fn link(&mut self, u: LctNodeId, v: LctNodeId, _edge: ()) {
        self.link_edge(u, v);
    }

    fn cut(&mut self, u: LctNodeId, v: LctNodeId, _edge: ()) {
        self.cut_edge(u, v);
    }

    fn connected(&mut self, u: LctNodeId, v: LctNodeId) -> bool {
        LinkCutTree::connected(self, u, v)
    }
}

impl PathOps for LinkCutTree {
    fn path_max(&mut self, u: LctNodeId, v: LctNodeId) -> Option<LctNodeId> {
        self.path_max_node(u, v)
    }

    fn path_len(&mut self, u: LctNodeId, v: LctNodeId) -> usize {
        LinkCutTree::path_len(self, u, v)
    }

    fn path_search_below(&mut self, u: LctNodeId, v: LctNodeId, key: RankKey) -> Option<LctNodeId> {
        self.evert(v);
        self.path_to_root_search_below(u, key)
    }
}

impl ExpandableForest for LinkCutTree {
    fn with_nodes(n: usize, _seed: u64) -> Self {
        let mut lct = LinkCutTree::with_capacity(n);
        lct.add_nodes(n);
        lct
    }

    fn add_nodes(&mut self, k: usize) {
        for _ in 0..k {
            self.add_node(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsld_forest::Weight;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    /// Exercises the core contract through the trait object surface only, so any future
    /// backend can reuse the same checklist.
    fn core_contract<F: DynamicForest + ExpandableForest>(
        nodes: &[F::Node],
        edges: &[F::Edge],
        forest: &mut F,
    ) {
        let (a, b, c, d) = (nodes[0], nodes[1], nodes[2], nodes[3]);
        assert!(!forest.connected(a, b));
        forest.link(a, b, edges[0]);
        forest.link(b, c, edges[1]);
        assert!(forest.connected(a, c));
        assert!(!forest.connected(a, d));
        forest.cut(b, c, edges[1]);
        assert!(forest.connected(a, b));
        assert!(!forest.connected(a, c));
        // Relink elsewhere: the cut edge handle is reusable.
        forest.link(c, d, edges[1]);
        assert!(forest.connected(c, d));
    }

    #[test]
    fn euler_tour_forest_implements_the_core_contract() {
        let mut ett = <EulerTourForest as ExpandableForest>::with_nodes(4, 42);
        core_contract(&[v(0), v(1), v(2), v(3)], &[e(0), e(1)], &mut ett);
    }

    #[test]
    fn link_cut_tree_implements_the_core_contract() {
        let mut lct = <LinkCutTree as ExpandableForest>::with_nodes(4, 0);
        core_contract(&[0, 1, 2, 3], &[(), ()], &mut lct);
    }

    #[test]
    fn component_ops_cover_size_id_and_iteration() {
        let mut ett = EulerTourForest::new(5);
        ett.link(v(0), v(1), e(0));
        ett.link(v(1), v(2), e(1));
        assert_eq!(ComponentOps::component_size(&mut ett, v(0)), 3);
        assert_eq!(ComponentOps::component_size(&mut ett, v(3)), 1);
        assert_eq!(ett.component_id(v(0)), ett.component_id(v(2)));
        assert_ne!(ett.component_id(v(0)), ett.component_id(v(3)));
        let mut members = ComponentOps::component_vertices(&mut ett, v(1));
        members.sort();
        assert_eq!(members, vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn path_ops_cover_max_and_len() {
        // Path a - e0 - b - e1 - c with keyed edge nodes, as DynSld lays out its input LCT.
        let mut lct = LinkCutTree::new();
        let key = |w: Weight, i: u32| Some(RankKey::new(w, EdgeId(i)));
        let a = lct.add_node(None);
        let b = lct.add_node(None);
        let c = lct.add_node(None);
        let e0 = lct.add_node(key(5.0, 0));
        let e1 = lct.add_node(key(2.0, 1));
        for (x, y) in [(a, e0), (e0, b), (b, e1), (e1, c)] {
            DynamicForest::link(&mut lct, x, y, ());
        }
        assert_eq!(lct.path_max(a, c), Some(e0));
        assert_eq!(PathOps::path_len(&mut lct, a, c), 5);
    }

    #[test]
    fn path_ops_weight_search_on_a_monotone_spine() {
        // A fully keyed spine with ranks increasing towards the far endpoint — the layout
        // dendrogram spines use and the weight-search precondition requires.
        let mut lct = LinkCutTree::new();
        let keys: Vec<RankKey> = (0..4)
            .map(|i| RankKey::new(i as Weight, EdgeId(i)))
            .collect();
        let spine: Vec<LctNodeId> = keys.iter().map(|&k| lct.add_node(Some(k))).collect();
        for w in spine.windows(2) {
            DynamicForest::link(&mut lct, w[0], w[1], ());
        }
        let (lo, hi) = (spine[0], spine[3]);
        // Maximum key strictly below rank 2 is the rank-1 node.
        assert_eq!(lct.path_search_below(lo, hi, keys[2]), Some(spine[1]));
        // Nothing lies strictly below the smallest rank.
        assert_eq!(lct.path_search_below(lo, hi, keys[0]), None);
    }
}
