//! Link–cut trees (Sleator–Tarjan) with path aggregates, path-weight-search and path-median
//! queries.
//!
//! DynSLD uses this structure in two roles:
//!
//! * over the **input forest** (with one LCT node per vertex and one per edge, edge nodes
//!   carrying the edge's [`RankKey`]): connectivity, and maximum-weight-edge-on-path queries for
//!   threshold/LCA queries (Section 6.1) and the dynamic MSF (`dynsld-msf`);
//! * over the **dendrogram** (one LCT node per dendrogram node, keyed by the node's rank): the
//!   *path weight search* (Definition 4.1) and *path median* (Definition 4.2) queries that power
//!   the output-sensitive insertion algorithms of Section 4, in `O(log n)` amortized time per
//!   query instead of the paper's `O(log n)` worst-case RC-tree implementation (see DESIGN.md,
//!   substitution 3).
//!
//! The structure is a standard splay-based LCT with lazy path reversal (`evert`), subtree sizes
//! (for path length / k-th selection) and maximum-key aggregates per preferred path.

use dynsld_forest::RankKey;

/// Identifier of a node of a [`LinkCutTree`] (an index into its arena).
pub type LctNodeId = usize;

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    parent: u32,
    left: u32,
    right: u32,
    /// Lazy "reverse this splay subtree" flag (set by `evert`).
    rev: bool,
    /// Optional key (rank) carried by this node. Vertex nodes of an input-forest LCT are
    /// keyless; edge nodes and dendrogram nodes are keyed.
    key: Option<RankKey>,
    /// Number of nodes in this splay subtree.
    size: u32,
    /// Node with the maximum key in this splay subtree (`NONE` if no node in the subtree has a
    /// key).
    max_node: u32,
    /// Sum of the total (represented-subtree) sizes of this node's *virtual* children — children
    /// in the represented tree that are attached by a path-parent pointer rather than as a
    /// preferred (splay) child.
    virt: u64,
    /// Total represented size of this splay subtree: the splay-subtree nodes plus everything
    /// hanging below them via virtual children. `total = 1 + virt + total(left) + total(right)`.
    total: u64,
}

impl Node {
    fn new(key: Option<RankKey>) -> Self {
        Node {
            parent: NONE,
            left: NONE,
            right: NONE,
            rev: false,
            key,
            size: 1,
            max_node: NONE,
            virt: 0,
            total: 1,
        }
    }
}

/// A splay-based link–cut tree over an arena of nodes.
///
/// Callers allocate nodes with [`add_node`](Self::add_node) and keep their own mapping from
/// application objects (vertices, edges, dendrogram nodes) to [`LctNodeId`]s.
#[derive(Clone, Debug, Default)]
pub struct LinkCutTree {
    nodes: Vec<Node>,
}

impl LinkCutTree {
    /// Creates an empty structure.
    pub fn new() -> Self {
        LinkCutTree { nodes: Vec::new() }
    }

    /// Creates an empty structure with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        LinkCutTree {
            nodes: Vec::with_capacity(n),
        }
    }

    /// Number of nodes ever allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if no nodes have been allocated.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Allocates a new isolated node carrying `key` and returns its id.
    pub fn add_node(&mut self, key: Option<RankKey>) -> LctNodeId {
        let mut node = Node::new(key);
        node.max_node = if key.is_some() {
            self.nodes.len() as u32
        } else {
            NONE
        };
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Returns the key of node `x`.
    pub fn key(&self, x: LctNodeId) -> Option<RankKey> {
        self.nodes[x].key
    }

    /// Changes the key of node `x` (the node may be linked; aggregates are repaired).
    pub fn set_key(&mut self, x: LctNodeId, key: Option<RankKey>) {
        let xi = x as u32;
        self.splay(xi);
        self.nodes[x].key = key;
        self.update(xi);
    }

    // ----- internal splay machinery -------------------------------------------------------

    #[inline]
    fn size(&self, t: u32) -> u32 {
        if t == NONE {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    #[inline]
    fn max_of(&self, t: u32) -> u32 {
        if t == NONE {
            NONE
        } else {
            self.nodes[t as usize].max_node
        }
    }

    #[inline]
    fn total(&self, t: u32) -> u64 {
        if t == NONE {
            0
        } else {
            self.nodes[t as usize].total
        }
    }

    fn update(&mut self, t: u32) {
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        let size = 1 + self.size(l) + self.size(r);
        let total = 1 + self.nodes[t as usize].virt + self.total(l) + self.total(r);
        let mut best = if self.nodes[t as usize].key.is_some() {
            t
        } else {
            NONE
        };
        for child_max in [self.max_of(l), self.max_of(r)] {
            if child_max == NONE {
                continue;
            }
            best = if best == NONE {
                child_max
            } else {
                let bk = self.nodes[best as usize].key.expect("keyed");
                let ck = self.nodes[child_max as usize].key.expect("keyed");
                if ck > bk {
                    child_max
                } else {
                    best
                }
            };
        }
        let n = &mut self.nodes[t as usize];
        n.size = size;
        n.total = total;
        n.max_node = best;
    }

    fn push_down(&mut self, t: u32) {
        if self.nodes[t as usize].rev {
            self.nodes[t as usize].rev = false;
            let l = self.nodes[t as usize].left;
            let r = self.nodes[t as usize].right;
            self.nodes[t as usize].left = r;
            self.nodes[t as usize].right = l;
            if l != NONE {
                self.nodes[l as usize].rev ^= true;
            }
            if r != NONE {
                self.nodes[r as usize].rev ^= true;
            }
        }
    }

    /// True if `x` is the root of its splay tree (its parent link, if any, is a path-parent).
    fn is_splay_root(&self, x: u32) -> bool {
        let p = self.nodes[x as usize].parent;
        p == NONE || (self.nodes[p as usize].left != x && self.nodes[p as usize].right != x)
    }

    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        let g = self.nodes[p as usize].parent;
        let p_was_root = self.is_splay_root(p);
        if self.nodes[p as usize].left == x {
            let b = self.nodes[x as usize].right;
            self.nodes[p as usize].left = b;
            if b != NONE {
                self.nodes[b as usize].parent = p;
            }
            self.nodes[x as usize].right = p;
        } else {
            let b = self.nodes[x as usize].left;
            self.nodes[p as usize].right = b;
            if b != NONE {
                self.nodes[b as usize].parent = p;
            }
            self.nodes[x as usize].left = p;
        }
        self.nodes[p as usize].parent = x;
        self.nodes[x as usize].parent = g;
        if !p_was_root {
            if self.nodes[g as usize].left == p {
                self.nodes[g as usize].left = x;
            } else if self.nodes[g as usize].right == p {
                self.nodes[g as usize].right = x;
            }
        }
        self.update(p);
        self.update(x);
    }

    fn splay(&mut self, x: u32) {
        // Push reversal flags down from the splay root to x before rotating.
        let mut path = vec![x];
        let mut cur = x;
        while !self.is_splay_root(cur) {
            cur = self.nodes[cur as usize].parent;
            path.push(cur);
        }
        for &node in path.iter().rev() {
            self.push_down(node);
        }
        while !self.is_splay_root(x) {
            let p = self.nodes[x as usize].parent;
            if !self.is_splay_root(p) {
                let g = self.nodes[p as usize].parent;
                let zigzig =
                    (self.nodes[g as usize].left == p) == (self.nodes[p as usize].left == x);
                if zigzig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    /// Makes the path from the represented root to `x` preferred and splays `x` to the root of
    /// its splay tree. Afterwards `x` has no (preferred) right child.
    fn access(&mut self, x: u32) {
        self.splay(x);
        if self.nodes[x as usize].right != NONE {
            // Deeper nodes fall off the preferred path; they keep x as a path-parent, so their
            // represented subtree becomes part of x's virtual size.
            let r = self.nodes[x as usize].right;
            self.nodes[x as usize].virt += self.total(r);
            self.nodes[x as usize].right = NONE;
            self.update(x);
        }
        loop {
            let p = self.nodes[x as usize].parent;
            if p == NONE {
                break;
            }
            self.splay(p);
            // p's old preferred child (if any) becomes a virtual child; x stops being one.
            let old = self.nodes[p as usize].right;
            self.nodes[p as usize].virt += self.total(old);
            self.nodes[p as usize].virt -= self.total(x);
            self.nodes[p as usize].right = x;
            self.update(p);
            self.splay(x);
        }
    }

    // ----- public structural operations ---------------------------------------------------

    /// Returns the root of the represented tree containing `x`.
    pub fn find_root(&mut self, x: LctNodeId) -> LctNodeId {
        let xi = x as u32;
        self.access(xi);
        let mut cur = xi;
        self.push_down(cur);
        while self.nodes[cur as usize].left != NONE {
            cur = self.nodes[cur as usize].left;
            self.push_down(cur);
        }
        self.splay(cur);
        cur as LctNodeId
    }

    /// Returns true if `x` and `y` are in the same represented tree.
    pub fn connected(&mut self, x: LctNodeId, y: LctNodeId) -> bool {
        x == y || self.find_root(x) == self.find_root(y)
    }

    /// Makes `x` the root of its represented tree (path reversal).
    pub fn evert(&mut self, x: LctNodeId) {
        let xi = x as u32;
        self.access(xi);
        self.nodes[x].rev ^= true;
        self.push_down(xi);
    }

    /// Links `child` (which must be the root of its represented tree) below `parent`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `child` is not a represented-tree root, or (always) if the
    /// two nodes are already connected.
    pub fn link(&mut self, child: LctNodeId, parent: LctNodeId) {
        assert!(
            !self.connected(child, parent),
            "link would create a cycle in the link-cut tree"
        );
        let ci = child as u32;
        self.access(ci);
        debug_assert_eq!(
            self.nodes[child].left, NONE,
            "link: child must be the root of its represented tree"
        );
        self.access(parent as u32);
        self.nodes[child].parent = parent as u32;
        // The child hangs off `parent` as a virtual (path-parent) child.
        self.nodes[parent].virt += self.total(ci);
        self.update(parent as u32);
    }

    /// Links the represented edge `{u, v}` regardless of current roots (`evert(u)` then link).
    pub fn link_edge(&mut self, u: LctNodeId, v: LctNodeId) {
        self.evert(u);
        self.link(u, v);
    }

    /// Cuts `x` from its parent in the represented tree.
    ///
    /// # Panics
    /// Panics if `x` is a represented-tree root (has no parent).
    pub fn cut_from_parent(&mut self, x: LctNodeId) {
        let xi = x as u32;
        self.access(xi);
        let l = self.nodes[x].left;
        assert!(
            l != NONE,
            "cut_from_parent: node is a represented-tree root"
        );
        self.nodes[l as usize].parent = NONE;
        self.nodes[x].left = NONE;
        self.update(xi);
    }

    /// Cuts the represented edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if `u` and `v` are not adjacent in the represented tree.
    pub fn cut_edge(&mut self, u: LctNodeId, v: LctNodeId) {
        self.evert(u);
        self.access(v as u32);
        // After evert(u) and access(v), the splay tree holds the path u .. v with v as splay
        // root; u and v are adjacent iff v's left child is u and u has no right child.
        let ui = u as u32;
        let ok =
            self.nodes[v].left == ui && self.nodes[u].left == NONE && self.nodes[u].right == NONE;
        assert!(
            ok,
            "cut_edge: nodes are not adjacent in the represented tree"
        );
        self.nodes[v].left = NONE;
        self.nodes[u].parent = NONE;
        self.update(v as u32);
    }

    /// Number of nodes in the represented subtree rooted at `x` (with respect to the current
    /// represented root), including `x` itself.
    ///
    /// For a link-cut tree mirroring the dendrogram this is exactly the number of dendrogram
    /// nodes below `x`, which DynSLD uses for `O(log n)` cluster-size queries (Table 2).
    pub fn represented_subtree_size(&mut self, x: LctNodeId) -> usize {
        self.access(x as u32);
        // After access, every represented child of x is a virtual child.
        (1 + self.nodes[x].virt) as usize
    }

    /// Returns the parent of `x` in the represented tree, if any.
    pub fn represented_parent(&mut self, x: LctNodeId) -> Option<LctNodeId> {
        let xi = x as u32;
        self.access(xi);
        // The parent is the rightmost node of x's left subtree.
        let mut cur = self.nodes[x].left;
        if cur == NONE {
            return None;
        }
        self.push_down(cur);
        while self.nodes[cur as usize].right != NONE {
            cur = self.nodes[cur as usize].right;
            self.push_down(cur);
        }
        self.splay(cur);
        Some(cur as LctNodeId)
    }

    // ----- path queries --------------------------------------------------------------------

    /// Returns the node with the maximum key on the path between `x` and `y` (inclusive), or
    /// `None` if no node on the path carries a key.
    ///
    /// Uses `evert`, so it changes the represented root; do not mix with the rooted
    /// (dendrogram) query family on the same structure.
    pub fn path_max_node(&mut self, x: LctNodeId, y: LctNodeId) -> Option<LctNodeId> {
        self.evert(x);
        self.access(y as u32);
        let m = self.nodes[y].max_node;
        if m == NONE {
            None
        } else {
            Some(m as LctNodeId)
        }
    }

    /// Number of nodes on the path between `x` and `y`, inclusive. Uses `evert`.
    pub fn path_len(&mut self, x: LctNodeId, y: LctNodeId) -> usize {
        self.evert(x);
        self.access(y as u32);
        self.nodes[y].size as usize
    }

    /// Number of nodes on the path from `x` to the root of its represented tree, inclusive.
    pub fn path_to_root_len(&mut self, x: LctNodeId) -> usize {
        self.access(x as u32);
        self.nodes[x].size as usize
    }

    /// The `k`-th node on the path from `x` (k = 0) towards the represented root
    /// (k = `path_to_root_len(x) - 1`).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn path_to_root_kth(&mut self, x: LctNodeId, k: usize) -> LctNodeId {
        self.access(x as u32);
        let len = self.nodes[x].size as usize;
        assert!(k < len, "k out of range");
        // In-order position: index 0 = represented root (shallowest); x is at index len - 1.
        self.select_in_order(x as u32, (len - 1 - k) as u32) as LctNodeId
    }

    /// The median node (index `⌊len / 2⌋` counted from `x`) of the path from `x` to the root.
    pub fn path_to_root_median(&mut self, x: LctNodeId) -> LctNodeId {
        let len = self.path_to_root_len(x);
        self.path_to_root_kth(x, len / 2)
    }

    fn select_in_order(&mut self, root: u32, mut k: u32) -> u32 {
        let mut cur = root;
        loop {
            self.push_down(cur);
            let lsize = self.size(self.nodes[cur as usize].left);
            if k < lsize {
                cur = self.nodes[cur as usize].left;
            } else if k == lsize {
                // Splaying the selected node keeps the amortized analysis valid.
                self.splay(cur);
                return cur;
            } else {
                k -= lsize + 1;
                cur = self.nodes[cur as usize].right;
            }
        }
    }

    /// Path weight search (Definition 4.1) towards the root: among the nodes on the path from
    /// `x` to its represented root, returns the node with the **maximum key strictly less than**
    /// `w`, or `None` if every key on the path is `>= w`.
    ///
    /// All nodes on the path must carry keys and the keys must be increasing from `x` to the
    /// root (which holds for dendrogram spines); under that precondition the search descends the
    /// splay tree in `O(log n)` amortized time.
    pub fn path_to_root_search_below(&mut self, x: LctNodeId, w: RankKey) -> Option<LctNodeId> {
        self.access(x as u32);
        self.search_below_in(x as u32, w)
    }

    /// Symmetric to [`path_to_root_search_below`](Self::path_to_root_search_below): the node
    /// with the **minimum key strictly greater than** `w` on the path from `x` to its root.
    pub fn path_to_root_search_above(&mut self, x: LctNodeId, w: RankKey) -> Option<LctNodeId> {
        self.access(x as u32);
        self.search_above_in(x as u32, w)
    }

    /// Keys along the in-order are decreasing (root = max key is leftmost... wait: in-order goes
    /// from the represented root to `x`, and on a dendrogram spine the rank *decreases* with
    /// depth towards `x`), so nodes with key < w form an in-order suffix and the answer is that
    /// suffix's first element.
    fn search_below_in(&mut self, root: u32, w: RankKey) -> Option<LctNodeId> {
        let mut ans = NONE;
        let mut cur = root;
        while cur != NONE {
            self.push_down(cur);
            let key = self.nodes[cur as usize]
                .key
                .expect("path weight search requires keyed path nodes");
            if key < w {
                ans = cur;
                cur = self.nodes[cur as usize].left;
            } else {
                cur = self.nodes[cur as usize].right;
            }
        }
        if ans == NONE {
            None
        } else {
            self.splay(ans);
            Some(ans as LctNodeId)
        }
    }

    fn search_above_in(&mut self, root: u32, w: RankKey) -> Option<LctNodeId> {
        let mut ans = NONE;
        let mut cur = root;
        while cur != NONE {
            self.push_down(cur);
            let key = self.nodes[cur as usize]
                .key
                .expect("path weight search requires keyed path nodes");
            if key > w {
                ans = cur;
                cur = self.nodes[cur as usize].right;
            } else {
                cur = self.nodes[cur as usize].left;
            }
        }
        if ans == NONE {
            None
        } else {
            self.splay(ans);
            Some(ans as LctNodeId)
        }
    }

    // ----- ancestor-bounded (sub-spine) queries ---------------------------------------------

    /// Splays `ancestor` within the splay tree exposed by `access(x)` and returns it; afterwards
    /// the sub-path `ancestor .. x` is `ancestor` plus its right splay subtree.
    fn expose_subpath(&mut self, x: LctNodeId, ancestor: LctNodeId) -> u32 {
        self.access(x as u32);
        self.splay(ancestor as u32);
        ancestor as u32
    }

    /// Number of nodes on the represented path from `x` up to `ancestor`, inclusive.
    /// `ancestor` must be an ancestor of `x` (or `x` itself).
    pub fn subpath_len(&mut self, x: LctNodeId, ancestor: LctNodeId) -> usize {
        let a = self.expose_subpath(x, ancestor);
        1 + self.size(self.nodes[a as usize].right) as usize
    }

    /// The `k`-th node (k = 0 at `x`, increasing towards `ancestor`) of the path from `x` up to
    /// `ancestor`.
    pub fn subpath_kth(&mut self, x: LctNodeId, ancestor: LctNodeId, k: usize) -> LctNodeId {
        let a = self.expose_subpath(x, ancestor);
        let len = 1 + self.size(self.nodes[a as usize].right) as usize;
        assert!(k < len, "k out of range");
        // In-order over {ancestor} ∪ right-subtree: index 0 = ancestor, index len-1 = x.
        let in_order_index = (len - 1 - k) as u32;
        if in_order_index == 0 {
            return ancestor;
        }
        let right = self.nodes[a as usize].right;
        self.select_in_order(right, in_order_index - 1) as LctNodeId
    }

    /// Path weight search restricted to the sub-path `x .. ancestor`: maximum key `< w`.
    pub fn subpath_search_below(
        &mut self,
        x: LctNodeId,
        ancestor: LctNodeId,
        w: RankKey,
    ) -> Option<LctNodeId> {
        let a = self.expose_subpath(x, ancestor);
        let akey = self.nodes[a as usize]
            .key
            .expect("path weight search requires keyed path nodes");
        let right = self.nodes[a as usize].right;
        if right != NONE {
            if let Some(found) = self.search_below_in(right, w) {
                // The right subtree holds the deeper (smaller-key) part; any hit there is only
                // correct if the ancestor itself is not a better (larger) key below w.
                let fk = self.nodes[found].key.expect("keyed");
                if akey < w && akey > fk {
                    return Some(ancestor);
                }
                return Some(found);
            }
        }
        if akey < w {
            Some(ancestor)
        } else {
            None
        }
    }

    /// Path weight search restricted to the sub-path `x .. ancestor`: minimum key `> w`.
    pub fn subpath_search_above(
        &mut self,
        x: LctNodeId,
        ancestor: LctNodeId,
        w: RankKey,
    ) -> Option<LctNodeId> {
        let a = self.expose_subpath(x, ancestor);
        let akey = self.nodes[a as usize]
            .key
            .expect("path weight search requires keyed path nodes");
        let right = self.nodes[a as usize].right;
        if right != NONE {
            if let Some(found) = self.search_above_in(right, w) {
                return Some(found);
            }
        }
        if akey > w {
            Some(ancestor)
        } else {
            None
        }
    }

    /// Collects the nodes of the path from `x` to its represented root, in order from `x`
    /// (index 0) to the root. `O(path length)` plus the amortized access cost.
    pub fn path_to_root_nodes(&mut self, x: LctNodeId) -> Vec<LctNodeId> {
        self.access(x as u32);
        let mut out = Vec::with_capacity(self.nodes[x].size as usize);
        self.collect_reverse_in_order(x as u32, &mut out);
        out
    }

    fn collect_reverse_in_order(&mut self, root: u32, out: &mut Vec<LctNodeId>) {
        // Iterative reverse in-order traversal (right, node, left): splay trees can degenerate
        // into long chains, so recursion could overflow the stack on large paths.
        let mut stack = Vec::new();
        let mut cur = root;
        while cur != NONE || !stack.is_empty() {
            while cur != NONE {
                self.push_down(cur);
                stack.push(cur);
                cur = self.nodes[cur as usize].right;
            }
            let t = stack.pop().expect("non-empty stack");
            out.push(t as LctNodeId);
            cur = self.nodes[t as usize].left;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsld_forest::EdgeId;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn key(w: f64, id: u32) -> RankKey {
        RankKey::new(w, EdgeId(id))
    }

    /// Builds an LCT whose represented tree is a path `0 - 1 - ... - n-1` rooted at `n-1`,
    /// where node i carries key (i, i). (Keys increase towards the root, like a dendrogram
    /// spine.)
    fn build_keyed_path(n: usize) -> LinkCutTree {
        let mut lct = LinkCutTree::with_capacity(n);
        for i in 0..n {
            lct.add_node(Some(key(i as f64, i as u32)));
        }
        for i in (0..n - 1).rev() {
            // i's parent is i + 1.
            lct.link(i, i + 1);
        }
        lct
    }

    #[test]
    fn connectivity_and_roots() {
        let mut lct = LinkCutTree::new();
        let a = lct.add_node(None);
        let b = lct.add_node(None);
        let c = lct.add_node(None);
        let d = lct.add_node(None);
        assert!(!lct.connected(a, b));
        lct.link(a, b); // a child of b
        lct.link(c, b);
        assert!(lct.connected(a, c));
        assert!(!lct.connected(a, d));
        assert_eq!(lct.find_root(a), b);
        assert_eq!(lct.find_root(c), b);
        lct.cut_from_parent(a);
        assert!(!lct.connected(a, c));
        assert_eq!(lct.find_root(a), a);
    }

    #[test]
    fn represented_parent_is_tracked() {
        let mut lct = build_keyed_path(6);
        assert_eq!(lct.represented_parent(0), Some(1));
        assert_eq!(lct.represented_parent(4), Some(5));
        assert_eq!(lct.represented_parent(5), None);
        lct.cut_from_parent(3);
        assert_eq!(lct.represented_parent(3), None);
        assert_eq!(lct.represented_parent(2), Some(3));
        assert_eq!(lct.find_root(0), 3);
    }

    #[test]
    fn evert_changes_root() {
        let mut lct = build_keyed_path(5);
        assert_eq!(lct.find_root(0), 4);
        lct.evert(2);
        assert_eq!(lct.find_root(0), 2);
        assert_eq!(lct.find_root(4), 2);
        assert_eq!(lct.represented_parent(2), None);
        assert_eq!(lct.represented_parent(4), Some(3));
        // 1's parent is now 2 (path was reversed above 2... actually below 2 unchanged).
        assert_eq!(lct.represented_parent(1), Some(2));
    }

    #[test]
    fn link_edge_and_cut_edge_roundtrip() {
        let mut lct = LinkCutTree::new();
        let nodes: Vec<_> = (0..6).map(|_| lct.add_node(None)).collect();
        lct.link_edge(nodes[0], nodes[1]);
        lct.link_edge(nodes[1], nodes[2]);
        lct.link_edge(nodes[3], nodes[4]);
        lct.link_edge(nodes[2], nodes[3]);
        assert!(lct.connected(nodes[0], nodes[4]));
        lct.cut_edge(nodes[2], nodes[3]);
        assert!(!lct.connected(nodes[0], nodes[4]));
        assert!(lct.connected(nodes[0], nodes[2]));
        assert!(lct.connected(nodes[3], nodes[4]));
        // Relink in the other direction.
        lct.link_edge(nodes[4], nodes[0]);
        assert!(lct.connected(nodes[2], nodes[3]));
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn cut_edge_panics_for_non_adjacent() {
        let mut lct = build_keyed_path(4);
        lct.cut_edge(0, 2);
    }

    #[test]
    fn path_max_finds_heaviest_edge() {
        // Star: center 0, leaves 1..=3, edge nodes 4..=6 with weights 5, 1, 9.
        let mut lct = LinkCutTree::new();
        let v: Vec<_> = (0..4).map(|_| lct.add_node(None)).collect();
        let e01 = lct.add_node(Some(key(5.0, 0)));
        let e02 = lct.add_node(Some(key(1.0, 1)));
        let e03 = lct.add_node(Some(key(9.0, 2)));
        for (edge, leaf) in [(e01, v[1]), (e02, v[2]), (e03, v[3])] {
            lct.link_edge(v[0], edge);
            lct.link_edge(edge, leaf);
        }
        assert_eq!(lct.path_max_node(v[1], v[2]), Some(e01));
        assert_eq!(lct.path_max_node(v[2], v[3]), Some(e03));
        assert_eq!(lct.path_max_node(v[1], v[3]), Some(e03));
        assert_eq!(lct.path_max_node(v[0], v[2]), Some(e02));
        // Path between a node and itself has no keyed node (vertex nodes are keyless).
        assert_eq!(lct.path_max_node(v[1], v[1]), None);
        assert_eq!(lct.path_len(v[1], v[2]), 5);
    }

    #[test]
    fn path_to_root_len_and_kth() {
        let mut lct = build_keyed_path(10);
        assert_eq!(lct.path_to_root_len(0), 10);
        assert_eq!(lct.path_to_root_len(9), 1);
        assert_eq!(lct.path_to_root_len(4), 6);
        assert_eq!(lct.path_to_root_kth(0, 0), 0);
        assert_eq!(lct.path_to_root_kth(0, 9), 9);
        assert_eq!(lct.path_to_root_kth(0, 5), 5);
        assert_eq!(lct.path_to_root_kth(3, 2), 5);
        assert_eq!(lct.path_to_root_median(0), 5);
    }

    #[test]
    fn search_below_and_above_on_root_path() {
        let mut lct = build_keyed_path(16);
        // Path from 0 to root 15, keys 0..15 increasing towards the root.
        assert_eq!(lct.path_to_root_search_below(0, key(7.5, 100)), Some(7));
        assert_eq!(lct.path_to_root_search_below(0, key(7.0, 0)), Some(6));
        assert_eq!(lct.path_to_root_search_below(0, key(0.0, 0)), None);
        assert_eq!(lct.path_to_root_search_below(0, key(100.0, 0)), Some(15));
        assert_eq!(lct.path_to_root_search_above(0, key(7.5, 100)), Some(8));
        assert_eq!(lct.path_to_root_search_above(0, key(15.0, 200)), None);
        assert_eq!(lct.path_to_root_search_above(0, key(-3.0, 0)), Some(0));
        // From an interior node the path is shorter.
        assert_eq!(lct.path_to_root_search_below(10, key(7.5, 0)), None);
        assert_eq!(lct.path_to_root_search_below(10, key(12.0, 0)), Some(11));
    }

    #[test]
    fn subpath_queries_respect_the_ancestor_bound() {
        let mut lct = build_keyed_path(20);
        assert_eq!(lct.subpath_len(3, 10), 8);
        assert_eq!(lct.subpath_len(5, 5), 1);
        assert_eq!(lct.subpath_kth(3, 10, 0), 3);
        assert_eq!(lct.subpath_kth(3, 10, 7), 10);
        assert_eq!(lct.subpath_kth(3, 10, 4), 7);
        // Search below bounded by the sub-path [4 .. 12].
        assert_eq!(lct.subpath_search_below(4, 12, key(100.0, 0)), Some(12));
        assert_eq!(lct.subpath_search_below(4, 12, key(9.5, 0)), Some(9));
        assert_eq!(lct.subpath_search_below(4, 12, key(4.0, 0)), None);
        assert_eq!(lct.subpath_search_above(4, 12, key(9.5, 0)), Some(10));
        assert_eq!(lct.subpath_search_above(4, 12, key(12.0, 50)), None);
        assert_eq!(lct.subpath_search_above(4, 12, key(-1.0, 0)), Some(4));
    }

    #[test]
    fn path_to_root_nodes_in_spine_order() {
        let mut lct = build_keyed_path(8);
        assert_eq!(lct.path_to_root_nodes(0), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(lct.path_to_root_nodes(5), vec![5, 6, 7]);
        assert_eq!(lct.path_to_root_nodes(7), vec![7]);
    }

    #[test]
    fn set_key_updates_aggregates() {
        let mut lct = LinkCutTree::new();
        let a = lct.add_node(Some(key(1.0, 0)));
        let b = lct.add_node(Some(key(2.0, 1)));
        let c = lct.add_node(Some(key(3.0, 2)));
        lct.link(a, b);
        lct.link(b, c);
        assert_eq!(lct.path_max_node(a, c), Some(c));
        lct.set_key(a, Some(key(10.0, 0)));
        assert_eq!(lct.path_max_node(a, c), Some(a));
        assert_eq!(lct.key(a), Some(key(10.0, 0)));
    }

    #[test]
    fn represented_subtree_sizes_on_a_path() {
        let mut lct = build_keyed_path(10);
        // Path rooted at 9: subtree of node i (towards the leaf 0) has i + 1 nodes below-or-equal.
        for i in 0..10 {
            assert_eq!(lct.represented_subtree_size(i), i + 1);
        }
        lct.cut_from_parent(5);
        assert_eq!(lct.represented_subtree_size(9), 4);
        assert_eq!(lct.represented_subtree_size(5), 6);
        assert_eq!(lct.represented_subtree_size(0), 1);
    }

    #[test]
    fn represented_subtree_sizes_on_a_star() {
        let mut lct = LinkCutTree::new();
        let root = lct.add_node(Some(key(100.0, 0)));
        let kids: Vec<_> = (0..8)
            .map(|i| {
                let c = lct.add_node(Some(key(i as f64, i + 1)));
                lct.link(c, root);
                c
            })
            .collect();
        assert_eq!(lct.represented_subtree_size(root), 9);
        for &c in &kids {
            assert_eq!(lct.represented_subtree_size(c), 1);
        }
        // Hang a chain below one child.
        let extra = lct.add_node(Some(key(50.0, 20)));
        lct.link(extra, kids[3]);
        assert_eq!(lct.represented_subtree_size(kids[3]), 2);
        assert_eq!(lct.represented_subtree_size(root), 10);
    }

    #[test]
    fn randomized_subtree_sizes_match_naive() {
        let n = 100usize;
        let mut rng = SmallRng::seed_from_u64(777);
        let mut lct = LinkCutTree::with_capacity(n);
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            lct.add_node(Some(key(i as f64, i as u32)));
        }
        let naive_root = |parent: &Vec<Option<usize>>, mut x: usize| {
            while let Some(p) = parent[x] {
                x = p;
            }
            x
        };
        let naive_size = |parent: &Vec<Option<usize>>, x: usize| {
            // count nodes whose ancestor chain passes through x
            (0..parent.len())
                .filter(|&mut_v| {
                    let mut cur = mut_v;
                    loop {
                        if cur == x {
                            return true;
                        }
                        match parent[cur] {
                            Some(p) => cur = p,
                            None => return false,
                        }
                    }
                })
                .count()
        };
        for _ in 0..1500 {
            let op = rng.gen_range(0..3);
            if op == 0 {
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                let rx = naive_root(&parent, x);
                if naive_root(&parent, y) != rx {
                    lct.link(rx, y);
                    parent[rx] = Some(y);
                }
            } else if op == 1 {
                let x = rng.gen_range(0..n);
                if parent[x].is_some() {
                    lct.cut_from_parent(x);
                    parent[x] = None;
                }
            } else {
                let x = rng.gen_range(0..n);
                assert_eq!(lct.represented_subtree_size(x), naive_size(&parent, x));
            }
        }
    }

    /// Randomized comparison against a naive represented-forest oracle.
    #[test]
    fn randomized_against_naive_forest() {
        #[derive(Clone)]
        struct Naive {
            parent: Vec<Option<usize>>,
            key: Vec<RankKey>,
        }
        impl Naive {
            fn root(&self, mut x: usize) -> usize {
                while let Some(p) = self.parent[x] {
                    x = p;
                }
                x
            }
            fn path_to_root(&self, x: usize) -> Vec<usize> {
                let mut out = vec![x];
                let mut cur = x;
                while let Some(p) = self.parent[cur] {
                    out.push(p);
                    cur = p;
                }
                out
            }
        }

        let n = 200usize;
        let mut rng = SmallRng::seed_from_u64(12345);
        let mut lct = LinkCutTree::with_capacity(n);
        let mut naive = Naive {
            parent: vec![None; n],
            key: Vec::with_capacity(n),
        };
        for i in 0..n {
            let k = key(rng.gen::<f64>() * 100.0, i as u32);
            lct.add_node(Some(k));
            naive.key.push(k);
        }
        for step in 0..3000 {
            let op = rng.gen_range(0..10);
            if op < 4 {
                // Link a random root below a random node in another tree.
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                let rx = naive.root(x);
                if naive.root(y) != rx {
                    lct.link(rx, y);
                    naive.parent[rx] = Some(y);
                }
            } else if op < 6 {
                // Cut a random non-root node from its parent.
                let x = rng.gen_range(0..n);
                if naive.parent[x].is_some() {
                    lct.cut_from_parent(x);
                    naive.parent[x] = None;
                }
            } else {
                // Queries.
                let x = rng.gen_range(0..n);
                let y = rng.gen_range(0..n);
                assert_eq!(
                    lct.connected(x, y),
                    naive.root(x) == naive.root(y),
                    "connectivity mismatch at step {step}"
                );
                let path = naive.path_to_root(x);
                assert_eq!(
                    lct.path_to_root_len(x),
                    path.len(),
                    "len mismatch at {step}"
                );
                assert_eq!(lct.find_root(x), *path.last().expect("non-empty"));
                let k = rng.gen_range(0..path.len());
                assert_eq!(
                    lct.path_to_root_kth(x, k),
                    path[k],
                    "kth mismatch at {step}"
                );
                // PWS against a scan, valid only when keys increase towards the root.
                let increasing = path.windows(2).all(|w| naive.key[w[0]] < naive.key[w[1]]);
                if increasing {
                    let w = key(rng.gen::<f64>() * 100.0, rng.gen_range(0..n as u32));
                    let expect = path
                        .iter()
                        .copied()
                        .filter(|&p| naive.key[p] < w)
                        .max_by_key(|&p| naive.key[p]);
                    assert_eq!(
                        lct.path_to_root_search_below(x, w),
                        expect,
                        "pws mismatch at step {step}"
                    );
                    let expect_above = path
                        .iter()
                        .copied()
                        .filter(|&p| naive.key[p] > w)
                        .min_by_key(|&p| naive.key[p]);
                    assert_eq!(
                        lct.path_to_root_search_above(x, w),
                        expect_above,
                        "pws-above mismatch at step {step}"
                    );
                }
            }
        }
    }
}
