//! # dynsld-dyntree
//!
//! Dynamic tree data structures used by DynSLD (Section 2.4 of the paper).
//!
//! The paper's algorithms need two kinds of dynamic-forest functionality:
//!
//! 1. **Connectivity with component aggregates** over the *input forest*: after deleting an edge,
//!    each node on the characteristic spine must be assigned to the side of the cut containing
//!    its endpoints (batch connectivity queries), and cluster-report / flat-clustering queries
//!    iterate component members. Provided by [`EulerTourForest`] (Euler-tour trees over
//!    randomized treaps): `link`, `cut`, `connected`, `component_size`, component iteration —
//!    all `O(log n)` expected per operation.
//!
//! 2. **Path queries** over both the input forest (maximum-weight edge on a path, for threshold
//!    queries and the dynamic MSF) and the dendrogram itself (the paper's new *path weight
//!    search* and *path median* queries of Section 4.1, used by the output-sensitive update
//!    algorithms). Provided by [`LinkCutTree`] (splay-tree based link-cut trees with
//!    per-preferred-path aggregates): `link`, `cut`, `connected`, `path_max`, `path_len`,
//!    path-weight-search and k-th/median selection on root paths — all `O(log n)` amortized.
//!
//! The paper uses rake–compress (RC) trees for both roles because RC trees admit *batch-parallel*
//! updates with polylogarithmic depth. This crate supplies the sequential work-efficient
//! substrates (the `O(log n)`-per-operation costs that the DynSLD analysis charges to the
//! dynamic-tree structure); the companion crate `dynsld-rctree` provides the RC-tree structure
//! itself (parallel construction, path decomposition, batch queries). See DESIGN.md §1
//! (substitution 3) for the rationale.

//!
//! Both structures implement the [`traits`] capability family — [`DynamicForest`] for
//! link/cut/connectivity, [`PathOps`] (link-cut tree) for path aggregates, and
//! [`ComponentOps`] (Euler-tour forest) for component queries — so downstream code can be
//! generic over the forest backend (see the `ForestBackend` policy in `dynsld-msf`).

pub mod euler;
pub mod lct;
pub mod traits;

pub use euler::EulerTourForest;
pub use lct::{LctNodeId, LinkCutTree};
pub use traits::{ComponentOps, DynamicForest, ExpandableForest, PathOps};
