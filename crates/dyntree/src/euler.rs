//! Euler-tour trees over randomized treaps.
//!
//! An Euler-tour tree represents each tree of a dynamic forest by (a circular rotation of) its
//! Euler tour, stored in a balanced binary search tree keyed by tour position. We use treaps
//! with random priorities, giving `O(log n)` expected time per operation.
//!
//! The tour of a component contains one *vertex node* per vertex and two *arc nodes* per edge
//! (one per direction). Linking two components concatenates their (re-rooted) tours; cutting an
//! edge splits the tour around the two arcs of the edge.
//!
//! DynSLD uses this structure over the **input forest** for:
//! * connectivity queries during deletions (which side of the cut does a spine node fall on),
//! * component sizes and member iteration (cluster report / flat clustering fallbacks, MSF
//!   replacement-edge search on the smaller side),
//! * stable component representatives within a single query round.

use dynsld_forest::{EdgeId, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node {
    parent: u32,
    left: u32,
    right: u32,
    priority: u64,
    /// Total number of treap nodes in this subtree (including self).
    size: u32,
    /// Number of vertex nodes in this subtree (including self if it is a vertex node).
    vertex_count: u32,
    /// The vertex this node represents, or `NONE` for an arc node.
    vertex: u32,
}

impl Node {
    fn new(priority: u64, vertex: u32) -> Self {
        Node {
            parent: NONE,
            left: NONE,
            right: NONE,
            priority,
            size: 1,
            vertex_count: u32::from(vertex != NONE),
            vertex,
        }
    }
}

/// Euler-tour tree representation of a dynamic forest.
///
/// Vertices are fixed at construction time ([`EulerTourForest::new`] / [`add_vertices`]);
/// edges are added with [`link`] and removed with [`cut`], identified by the [`EdgeId`] the
/// caller assigns (normally the id used by [`dynsld_forest::Forest`]).
///
/// [`add_vertices`]: EulerTourForest::add_vertices
/// [`link`]: EulerTourForest::link
/// [`cut`]: EulerTourForest::cut
#[derive(Clone, Debug)]
pub struct EulerTourForest {
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// vertex id -> treap node holding that vertex.
    vertex_node: Vec<u32>,
    /// edge id -> the two arc nodes of that edge, if the edge is present.
    edge_arcs: Vec<Option<(u32, u32)>>,
    rng: SmallRng,
}

impl EulerTourForest {
    /// Creates a forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self::with_seed(n, 0x5eed_e77e)
    }

    /// Creates a forest of `n` isolated vertices with an explicit RNG seed (for reproducibility).
    pub fn with_seed(n: usize, seed: u64) -> Self {
        let mut ett = EulerTourForest {
            nodes: Vec::with_capacity(2 * n),
            free: Vec::new(),
            vertex_node: Vec::with_capacity(n),
            edge_arcs: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        };
        ett.add_vertices(n);
        ett
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_node.len()
    }

    /// Adds `k` isolated vertices.
    pub fn add_vertices(&mut self, k: usize) {
        for _ in 0..k {
            let v = self.vertex_node.len() as u32;
            let node = self.alloc(v);
            self.vertex_node.push(node);
        }
    }

    fn alloc(&mut self, vertex: u32) -> u32 {
        let priority = self.rng.gen::<u64>();
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = Node::new(priority, vertex);
                idx
            }
            None => {
                self.nodes.push(Node::new(priority, vertex));
                (self.nodes.len() - 1) as u32
            }
        }
    }

    #[inline]
    fn size(&self, t: u32) -> u32 {
        if t == NONE {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    #[inline]
    fn vcount(&self, t: u32) -> u32 {
        if t == NONE {
            0
        } else {
            self.nodes[t as usize].vertex_count
        }
    }

    fn update(&mut self, t: u32) {
        let (l, r, is_v) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right, n.vertex != NONE)
        };
        let size = 1 + self.size(l) + self.size(r);
        let vcount = u32::from(is_v) + self.vcount(l) + self.vcount(r);
        let n = &mut self.nodes[t as usize];
        n.size = size;
        n.vertex_count = vcount;
    }

    fn root_of(&self, mut t: u32) -> u32 {
        while self.nodes[t as usize].parent != NONE {
            t = self.nodes[t as usize].parent;
        }
        t
    }

    /// In-order position of node `t` within its treap.
    fn position(&self, t: u32) -> u32 {
        let mut idx = self.size(self.nodes[t as usize].left);
        let mut cur = t;
        while self.nodes[cur as usize].parent != NONE {
            let p = self.nodes[cur as usize].parent;
            if self.nodes[p as usize].right == cur {
                idx += self.size(self.nodes[p as usize].left) + 1;
            }
            cur = p;
        }
        idx
    }

    /// Splits the treap rooted at `t` into (first `k` nodes, rest). Both results are roots.
    fn split(&mut self, t: u32, k: u32) -> (u32, u32) {
        if t == NONE {
            return (NONE, NONE);
        }
        debug_assert_eq!(self.nodes[t as usize].parent, NONE);
        let lsize = self.size(self.nodes[t as usize].left);
        if k <= lsize {
            let left = self.nodes[t as usize].left;
            if left != NONE {
                self.nodes[left as usize].parent = NONE;
            }
            let (a, b) = self.split(left, k);
            self.nodes[t as usize].left = b;
            if b != NONE {
                self.nodes[b as usize].parent = t;
            }
            self.update(t);
            if a != NONE {
                self.nodes[a as usize].parent = NONE;
            }
            (a, t)
        } else {
            let right = self.nodes[t as usize].right;
            if right != NONE {
                self.nodes[right as usize].parent = NONE;
            }
            let (a, b) = self.split(right, k - lsize - 1);
            self.nodes[t as usize].right = a;
            if a != NONE {
                self.nodes[a as usize].parent = t;
            }
            self.update(t);
            if b != NONE {
                self.nodes[b as usize].parent = NONE;
            }
            (t, b)
        }
    }

    /// Joins two treaps (all keys of `a` precede all keys of `b`). Returns the new root.
    fn join(&mut self, a: u32, b: u32) -> u32 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        debug_assert_eq!(self.nodes[a as usize].parent, NONE);
        debug_assert_eq!(self.nodes[b as usize].parent, NONE);
        if self.nodes[a as usize].priority > self.nodes[b as usize].priority {
            let ar = self.nodes[a as usize].right;
            if ar != NONE {
                self.nodes[ar as usize].parent = NONE;
            }
            let r = self.join(ar, b);
            self.nodes[a as usize].right = r;
            self.nodes[r as usize].parent = a;
            self.update(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            if bl != NONE {
                self.nodes[bl as usize].parent = NONE;
            }
            let l = self.join(a, bl);
            self.nodes[b as usize].left = l;
            self.nodes[l as usize].parent = b;
            self.update(b);
            b
        }
    }

    /// Rotates the tour of `v`'s component so that it starts at `v`'s vertex node.
    /// Returns the new treap root.
    fn reroot(&mut self, v: VertexId) -> u32 {
        let vnode = self.vertex_node[v.index()];
        let root = self.root_of(vnode);
        let pos = self.position(vnode);
        let (a, b) = self.split(root, pos);
        self.join(b, a)
    }

    /// Returns true if `u` and `v` are in the same component.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.component_repr(u) == self.component_repr(v)
    }

    /// An opaque identifier of `v`'s component.
    ///
    /// Two vertices have equal representatives iff they are connected. Representatives are only
    /// stable *between* updates: any [`link`](Self::link) or [`cut`](Self::cut) may change them.
    pub fn component_repr(&self, v: VertexId) -> usize {
        self.root_of(self.vertex_node[v.index()]) as usize
    }

    /// Number of vertices in `v`'s component.
    pub fn component_size(&self, v: VertexId) -> usize {
        let root = self.root_of(self.vertex_node[v.index()]);
        self.nodes[root as usize].vertex_count as usize
    }

    /// Collects the vertices of `v`'s component (in Euler-tour order).
    pub fn component_vertices(&self, v: VertexId) -> Vec<VertexId> {
        let root = self.root_of(self.vertex_node[v.index()]);
        let mut out = Vec::with_capacity(self.nodes[root as usize].vertex_count as usize);
        // Iterative in-order traversal.
        let mut stack = Vec::new();
        let mut cur = root;
        while cur != NONE || !stack.is_empty() {
            while cur != NONE {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let t = stack.pop().expect("non-empty stack");
            let vert = self.nodes[t as usize].vertex;
            if vert != NONE {
                out.push(VertexId(vert));
            }
            cur = self.nodes[t as usize].right;
        }
        out
    }

    /// Links `u` and `v` with edge `e`, merging their components.
    ///
    /// # Panics
    /// Panics if `u` and `v` are already connected or if `e` is already present.
    pub fn link(&mut self, u: VertexId, v: VertexId, e: EdgeId) {
        assert!(!self.connected(u, v), "link would create a cycle");
        if self.edge_arcs.len() <= e.index() {
            self.edge_arcs.resize(e.index() + 1, None);
        }
        assert!(
            self.edge_arcs[e.index()].is_none(),
            "edge {e} already present"
        );
        let tour_u = self.reroot(u);
        let tour_v = self.reroot(v);
        let arc_uv = self.alloc(NONE);
        let arc_vu = self.alloc(NONE);
        self.edge_arcs[e.index()] = Some((arc_uv, arc_vu));
        let t = self.join(tour_u, arc_uv);
        let t = self.join(t, tour_v);
        self.join(t, arc_vu);
    }

    /// Returns true if edge `e` is currently present.
    pub fn has_edge(&self, e: EdgeId) -> bool {
        self.edge_arcs.get(e.index()).is_some_and(Option::is_some)
    }

    /// Cuts edge `e`, splitting its component in two.
    ///
    /// # Panics
    /// Panics if `e` is not present.
    pub fn cut(&mut self, e: EdgeId) {
        let (a, b) = self
            .edge_arcs
            .get_mut(e.index())
            .and_then(Option::take)
            .unwrap_or_else(|| panic!("edge {e} not present"));
        let root = self.root_of(a);
        debug_assert_eq!(root, self.root_of(b), "arcs of one edge must share a tour");
        let pos_a = self.position(a);
        let pos_b = self.position(b);
        let (first, second, pos_first, pos_second) = if pos_a < pos_b {
            (a, b, pos_a, pos_b)
        } else {
            (b, a, pos_b, pos_a)
        };
        // Tour = L ++ [first] ++ M ++ [second] ++ R.
        let (l, rest) = self.split(root, pos_first);
        let (first_node, rest) = self.split(rest, 1);
        debug_assert_eq!(first_node, first);
        let (m, rest) = self.split(rest, pos_second - pos_first - 1);
        let (second_node, r) = self.split(rest, 1);
        debug_assert_eq!(second_node, second);
        // One component keeps M, the other keeps L ++ R.
        self.join(l, r);
        let _ = m;
        self.free.push(first);
        self.free.push(second);
    }

    /// Batch connectivity queries: for each pair, returns whether the two vertices are connected.
    ///
    /// Queries are read-only and independent, so callers may also evaluate them in parallel via
    /// `dynsld-parallel`; this convenience method evaluates them sequentially.
    pub fn batch_connected(&self, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        pairs.iter().map(|&(u, v)| self.connected(u, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsld_forest::gen::{self, WeightOrder};
    use rand::seq::SliceRandom;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }
    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn isolated_vertices_are_disconnected() {
        let ett = EulerTourForest::new(4);
        assert!(!ett.connected(v(0), v(1)));
        assert_eq!(ett.component_size(v(2)), 1);
        assert_eq!(ett.component_vertices(v(3)), vec![v(3)]);
    }

    #[test]
    fn link_connects_and_cut_disconnects() {
        let mut ett = EulerTourForest::new(5);
        ett.link(v(0), v(1), e(0));
        ett.link(v(1), v(2), e(1));
        ett.link(v(3), v(4), e(2));
        assert!(ett.connected(v(0), v(2)));
        assert!(!ett.connected(v(0), v(3)));
        assert_eq!(ett.component_size(v(0)), 3);
        assert_eq!(ett.component_size(v(4)), 2);
        ett.cut(e(1));
        assert!(ett.connected(v(0), v(1)));
        assert!(!ett.connected(v(1), v(2)));
        assert_eq!(ett.component_size(v(0)), 2);
        assert_eq!(ett.component_size(v(2)), 1);
        assert!(!ett.has_edge(e(1)));
        assert!(ett.has_edge(e(0)));
    }

    #[test]
    fn relink_after_cut_reuses_edge_id() {
        let mut ett = EulerTourForest::new(3);
        ett.link(v(0), v(1), e(0));
        ett.cut(e(0));
        ett.link(v(1), v(2), e(0));
        assert!(ett.connected(v(1), v(2)));
        assert!(!ett.connected(v(0), v(2)));
    }

    #[test]
    fn component_vertices_match_component() {
        let mut ett = EulerTourForest::new(6);
        ett.link(v(0), v(1), e(0));
        ett.link(v(2), v(1), e(1));
        ett.link(v(3), v(2), e(2));
        let mut members = ett.component_vertices(v(3));
        members.sort();
        assert_eq!(members, vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(ett.component_vertices(v(4)), vec![v(4)]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn linking_connected_vertices_panics() {
        let mut ett = EulerTourForest::new(3);
        ett.link(v(0), v(1), e(0));
        ett.link(v(1), v(2), e(1));
        ett.link(v(0), v(2), e(2));
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn cutting_absent_edge_panics() {
        let mut ett = EulerTourForest::new(3);
        ett.link(v(0), v(1), e(0));
        ett.cut(e(1));
    }

    /// Reference implementation: connectivity by DSU rebuilt from the alive edge list.
    struct Oracle {
        n: usize,
        edges: Vec<Option<(VertexId, VertexId)>>,
    }

    impl Oracle {
        fn connected(&self, a: VertexId, b: VertexId) -> bool {
            let mut dsu = dynsld_forest::Dsu::new(self.n);
            for uv in self.edges.iter().flatten() {
                dsu.union(uv.0, uv.1);
            }
            dsu.connected(a, b)
        }
        fn component_size(&self, a: VertexId) -> usize {
            let mut dsu = dynsld_forest::Dsu::new(self.n);
            for uv in self.edges.iter().flatten() {
                dsu.union(uv.0, uv.1);
            }
            dsu.set_size(a)
        }
    }

    #[test]
    fn randomized_updates_match_dsu_oracle() {
        let n = 120usize;
        let tree = gen::random_tree(n, 77);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let mut ett = EulerTourForest::new(n);
        let mut oracle = Oracle {
            n,
            edges: vec![None; n - 1],
        };
        // Start with the full tree.
        for (i, &(a, b, _)) in tree.edges.iter().enumerate() {
            ett.link(a, b, EdgeId(i as u32));
            oracle.edges[i] = Some((a, b));
        }
        let mut present: Vec<usize> = (0..n - 1).collect();
        let mut absent: Vec<usize> = Vec::new();
        for step in 0..600 {
            let do_cut = if present.is_empty() {
                false
            } else if absent.is_empty() {
                true
            } else {
                rng.gen_bool(0.5)
            };
            if do_cut {
                present.shuffle(&mut rng);
                let i = present.pop().expect("non-empty");
                ett.cut(EdgeId(i as u32));
                oracle.edges[i] = None;
                absent.push(i);
            } else {
                absent.shuffle(&mut rng);
                let i = absent.pop().expect("non-empty");
                let (a, b, _) = tree.edges[i];
                ett.link(a, b, EdgeId(i as u32));
                oracle.edges[i] = Some((a, b));
                present.push(i);
            }
            // Spot-check a handful of random pairs and sizes.
            for _ in 0..8 {
                let a = VertexId(rng.gen_range(0..n as u32));
                let b = VertexId(rng.gen_range(0..n as u32));
                assert_eq!(
                    ett.connected(a, b),
                    oracle.connected(a, b),
                    "connectivity mismatch at step {step}"
                );
                assert_eq!(
                    ett.component_size(a),
                    oracle.component_size(a),
                    "size mismatch at step {step}"
                );
            }
        }
    }

    #[test]
    fn path_component_has_correct_members_after_middle_cut() {
        let inst = gen::path(50, WeightOrder::Increasing);
        let mut ett = EulerTourForest::new(50);
        for (i, &(a, b, _)) in inst.edges.iter().enumerate() {
            ett.link(a, b, EdgeId(i as u32));
        }
        assert_eq!(ett.component_size(v(0)), 50);
        ett.cut(e(24)); // cut between v24 and v25
        assert_eq!(ett.component_size(v(0)), 25);
        assert_eq!(ett.component_size(v(49)), 25);
        let left = ett.component_vertices(v(0));
        assert!(left.iter().all(|x| x.0 <= 24));
        assert_eq!(left.len(), 25);
    }

    #[test]
    fn batch_connected_matches_individual_queries() {
        let mut ett = EulerTourForest::new(8);
        ett.link(v(0), v(1), e(0));
        ett.link(v(2), v(3), e(1));
        ett.link(v(1), v(2), e(2));
        ett.link(v(5), v(6), e(3));
        let pairs = vec![(v(0), v(3)), (v(0), v(5)), (v(6), v(5)), (v(7), v(7))];
        assert_eq!(ett.batch_connected(&pairs), vec![true, false, true, true]);
    }
}
