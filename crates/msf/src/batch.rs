//! Batch entry points for [`DynamicGraphClustering`].
//!
//! The paper's Theorem 1.5 gives batch-parallel dendrogram updates for *forest* batches in
//! which every inserted edge links two distinct components and the batch's incidence graph is a
//! forest, and for arbitrary sets of tree-edge deletions. A stream of *graph* updates does not
//! satisfy those preconditions directly — inserted edges may close cycles, and deleted tree
//! edges need replacement edges promoted from the reserve. This module does the routing:
//!
//! * [`DynamicGraphClustering::batch_insert_edges`] classifies the batch with a Kruskal-style
//!   union-find pass over current components (rank order, deterministic): edges that join
//!   distinct components ride [`DynSld::batch_insert`] in one shot; cycle-closing edges fall
//!   back to the per-edge insert (path-maximum comparison, possible eviction).
//! * [`DynamicGraphClustering::batch_delete_edges`] strips non-tree deletions out of the batch
//!   (reserve bookkeeping only), removes all tree edges with one [`DynSld::batch_delete`], then
//!   restores the MSF by a single Kruskal pass over the reserve edges incident to the affected
//!   components — the promoted edges again enter through [`DynSld::batch_insert`], because by
//!   construction they link distinct components and form an incidence forest.
//!
//! Both entry points validate the whole batch before mutating anything, process edges in rank
//! order (`(weight, endpoint pair)` — fully deterministic), and report per-edge [`MsfChange`]s
//! in *input* order so callers can correlate outcomes with submissions.

use crate::{component_members, pair, DynamicGraphClustering, MsfChange, ReplacementIndex};
use dynsld::{DynSld, DynSldError};
use dynsld_forest::{Dsu, VertexId, Weight};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The result of applying one batch of graph updates.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchOutcome {
    /// How the MSF changed, per input edge, in input order.
    pub changes: Vec<MsfChange>,
    /// Number of updates that rode the Theorem-1.5 batch fast path (including promoted
    /// replacement edges on deletion).
    pub fast_path: usize,
    /// Number of updates applied through the per-edge fallback.
    pub fallback: usize,
    /// Reserve edges promoted into the MSF by a deletion batch, in promotion order.
    pub promoted: Vec<(VertexId, VertexId)>,
    /// Wall time spent classifying the batch: the Kruskal-style union-find pass on insert,
    /// and the tree/non-tree split plus replacement-candidate search on delete.
    pub classify_time: Duration,
    /// The portion of [`classify_time`](Self::classify_time) spent in the forest backend's
    /// replacement search on deletion batches (candidate gathering/searching plus promotion
    /// attribution) — a *child* of the classify segment, not an additional one. This is the
    /// part that [`DynSldOptions::msf_backend`](dynsld::DynSldOptions) changes.
    pub replacement_time: Duration,
    /// Wall time spent mutating the structure: `batch_insert`/`batch_delete`, per-edge
    /// fallbacks, promotions, and membership bookkeeping.
    pub apply_time: Duration,
}

/// Maps arbitrary component representatives (as returned by [`DynSld::component_repr`]) to
/// dense local indices, so a small [`Dsu`] can run over just the components a batch touches.
#[derive(Default)]
struct LocalComponents {
    index: HashMap<usize, u32>,
}

impl LocalComponents {
    fn local(&mut self, sld: &DynSld, v: VertexId) -> VertexId {
        let repr = sld.component_repr(v);
        let next = self.index.len() as u32;
        VertexId(*self.index.entry(repr).or_insert(next))
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

/// Sorts batch indices into rank order: `(weight, normalised endpoint pair)` ascending. Using
/// the endpoint pair (not the insertion-assigned edge id) as tie-breaker keeps the order a pure
/// function of the batch content.
fn rank_order(edges: &[(VertexId, VertexId, Weight)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| {
        edges[a]
            .2
            .total_cmp(&edges[b].2)
            .then_with(|| pair(edges[a].0, edges[a].1).cmp(&pair(edges[b].0, edges[b].1)))
    });
    order
}

impl DynamicGraphClustering {
    /// Inserts a batch of graph edges and updates the MSF and dendrogram.
    ///
    /// Edges joining two distinct components (accounting for merges performed by lighter batch
    /// edges) are applied with one [`DynSld::batch_insert`]; the rest fall back to the per-edge
    /// path. The resulting MSF equals the one produced by inserting the edges one at a time in
    /// rank order. The whole batch is validated first — on `Err` nothing was changed.
    pub fn batch_insert_edges(
        &mut self,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Result<BatchOutcome, DynSldError> {
        // ---- validation (no mutation before this passes) ---------------------------------
        let mut batch_seen = std::collections::HashSet::new();
        for &(u, v, _) in edges {
            if u == v {
                return Err(DynSldError::SelfLoop(u));
            }
            for x in [u, v] {
                if x.index() >= self.num_vertices() {
                    return Err(DynSldError::VertexOutOfRange(x));
                }
            }
            let key = pair(u, v);
            if self.membership.contains_key(&key) {
                return Err(DynSldError::EdgeAlreadyExists(u, v));
            }
            if !batch_seen.insert(key) {
                return Err(DynSldError::ConflictingBatch(u, v));
            }
        }

        // ---- classify: Kruskal over (current components ∪ lighter batch edges) ----------
        let classify_start = Instant::now();
        let order = rank_order(edges);
        let mut comps = LocalComponents::default();
        let locals: Vec<(VertexId, VertexId)> = edges
            .iter()
            .map(|&(u, v, _)| (comps.local(&self.sld, u), comps.local(&self.sld, v)))
            .collect();
        let mut dsu = Dsu::new(comps.len());
        let mut forest_batch: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        let mut fallback_idx: Vec<usize> = Vec::new();
        let mut changes: Vec<Option<MsfChange>> = vec![None; edges.len()];
        for &i in &order {
            let (a, b) = locals[i];
            if dsu.union(a, b) {
                forest_batch.push(edges[i]);
                changes[i] = Some(MsfChange::Inserted);
            } else {
                fallback_idx.push(i);
            }
        }

        let classify_time = classify_start.elapsed();

        // ---- fast path: all forest edges in one Theorem-1.5 batch ------------------------
        let apply_start = Instant::now();
        if !forest_batch.is_empty() {
            self.sld
                .batch_insert(&forest_batch)
                .expect("classified forest batch satisfies the batch_insert precondition");
            for &(u, v, w) in &forest_batch {
                self.membership.insert(pair(u, v), true);
                self.weights.insert(pair(u, v), w);
                self.index_add_tree(u, v, w);
            }
        }

        // ---- fallback: cycle-closing edges, per edge, in rank order ----------------------
        let fallback = fallback_idx.len();
        for i in fallback_idx {
            let (u, v, w) = edges[i];
            let change = self
                .insert_edge(u, v, w)
                .expect("validated batch edge cannot fail to insert");
            changes[i] = Some(change);
        }

        Ok(BatchOutcome {
            changes: changes
                .into_iter()
                .map(|c| c.expect("every batch edge classified"))
                .collect(),
            fast_path: forest_batch.len(),
            fallback,
            promoted: Vec::new(),
            classify_time,
            // Insert batches run no deletion-side replacement search (HDT eviction replays in
            // the fallback path are accounted to apply_time with the rest of the fallback).
            replacement_time: Duration::ZERO,
            apply_time: apply_start.elapsed(),
        })
    }

    /// Deletes a batch of graph edges (addressed by endpoints) and updates the MSF and
    /// dendrogram, promoting replacement edges from the reserve where cuts can be reconnected.
    ///
    /// Non-tree deletions touch only the reserve index. All tree deletions are applied with one
    /// [`DynSld::batch_delete`]; the replacement search then runs a single deterministic
    /// Kruskal pass over the reserve edges incident to the affected components, and the
    /// accepted promotions enter through [`DynSld::batch_insert`]. The resulting MSF equals
    /// per-edge deletion in any order. The whole batch is validated first — on `Err` nothing
    /// was changed.
    pub fn batch_delete_edges(
        &mut self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<BatchOutcome, DynSldError> {
        // ---- validation (no mutation before this passes) ---------------------------------
        let mut batch_seen = std::collections::HashSet::new();
        for &(u, v) in pairs {
            let key = pair(u, v);
            if !self.membership.contains_key(&key) {
                return Err(DynSldError::EdgeNotFound(u, v));
            }
            if !batch_seen.insert(key) {
                return Err(DynSldError::ConflictingBatch(u, v));
            }
        }

        let mut changes: Vec<Option<MsfChange>> = vec![None; pairs.len()];

        // Classify/apply wall time is accumulated across the interleaved segments below:
        // classify = tree/non-tree split + replacement-candidate search; apply = the
        // Theorem-1.5 batch delete, bookkeeping, and promotions.
        let mut classify_time = Duration::ZERO;
        let mut apply_time = Duration::ZERO;

        // ---- non-tree deletions: reserve bookkeeping only --------------------------------
        let split_start = Instant::now();
        let mut tree_idx: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let key = pair(u, v);
            if self.membership[&key] {
                tree_idx.push(i);
            } else {
                self.index_remove_nontree(u, v);
                self.membership.remove(&key);
                self.weights.remove(&key);
                changes[i] = Some(MsfChange::RemovedNonTree);
            }
        }
        classify_time += split_start.elapsed();
        if tree_idx.is_empty() {
            return Ok(BatchOutcome {
                changes: changes
                    .into_iter()
                    .map(|c| c.expect("classified"))
                    .collect(),
                fast_path: 0,
                fallback: 0,
                promoted: Vec::new(),
                classify_time,
                replacement_time: Duration::ZERO,
                apply_time,
            });
        }

        // ---- tree deletions: one Theorem-1.5 batch ---------------------------------------
        let delete_start = Instant::now();
        let tree_pairs: Vec<(VertexId, VertexId)> = tree_idx.iter().map(|&i| pairs[i]).collect();
        self.sld
            .batch_delete(&tree_pairs)
            .expect("validated tree edges are alive forest edges");
        for &(u, v) in &tree_pairs {
            let key = pair(u, v);
            self.membership.remove(&key);
            self.weights.remove(&key);
        }
        apply_time += delete_start.elapsed();

        // ---- replacement search: backend-specific candidate gathering --------------------
        let search_start = Instant::now();
        let mut comps = LocalComponents::default();
        let deleted_locals: Vec<(VertexId, VertexId)> = tree_pairs
            .iter()
            .map(|&(u, v)| (comps.local(&self.sld, u), comps.local(&self.sld, v)))
            .collect();
        let candidates: Vec<(Weight, (VertexId, VertexId))> = match &mut self.index {
            // Scan backend: one deterministic Kruskal pass over the reserve edges incident to
            // the affected components. Affected components are the post-deletion components
            // of the deleted edges' endpoints. Every reserve edge is intra-tree, so a
            // candidate crossing a cut connects two affected pieces of the *same original
            // tree*. Per original tree, scan every piece except the largest (a crossing edge
            // cannot have both endpoints in its tree's largest piece): this finds every
            // candidate while keeping the scan on the small sides, as in the per-edge path —
            // skipping only the single global largest would fully enumerate the big side of
            // every other tree touched by the batch.
            ReplacementIndex::Scan { reserve } => {
                self.counters.replacement_searches += tree_pairs.len() as u64;
                let mut seeds: Vec<(VertexId, VertexId)> = Vec::new(); // (vertex, local id) per piece
                {
                    let mut seen = std::collections::HashSet::new();
                    for &(u, v) in &tree_pairs {
                        for x in [u, v] {
                            let local = comps.local(&self.sld, x);
                            if seen.insert(local) {
                                seeds.push((x, local));
                            }
                        }
                    }
                }
                // Group the pieces by original tree: the deleted edges connect exactly the
                // pieces of one original tree (they formed its spanning structure), so a DSU
                // over the pieces with one union per deleted edge recovers the per-tree
                // grouping.
                let mut tree_of_piece = Dsu::new(comps.len());
                for &(lu, lv) in &deleted_locals {
                    tree_of_piece.union(lu, lv);
                }
                let mut largest_of_tree: HashMap<u32, (usize, u32)> = HashMap::new(); // root -> (size, piece)
                for &(x, local) in &seeds {
                    let root = tree_of_piece.find(local).0;
                    let size = self.sld.component_size(x);
                    let entry = largest_of_tree.entry(root).or_insert((size, local.0));
                    if (size, local.0) > *entry {
                        *entry = (size, local.0);
                    }
                }
                let mut candidates: Vec<(Weight, (VertexId, VertexId))> = Vec::new();
                let mut candidate_seen = std::collections::HashSet::new();
                for &(seed, local) in &seeds {
                    let root = tree_of_piece.find(local).0;
                    if largest_of_tree[&root].1 == local.0 {
                        continue; // largest piece of this tree: every candidate is reachable elsewhere
                    }
                    for member in component_members(&self.sld, seed) {
                        for &(a, b) in &reserve[member.index()] {
                            self.counters.replacement_edges_scanned += 1;
                            if self.sld.connected(a, b) || !candidate_seen.insert(pair(a, b)) {
                                continue;
                            }
                            candidates.push((self.weights[&pair(a, b)], pair(a, b)));
                        }
                    }
                }
                candidates.sort_by(|x, y| x.0.total_cmp(&y.0).then_with(|| x.1.cmp(&y.1)));
                candidates
            }
            // HDT backend: replay the tree deletions through the level structure in input
            // order. Each search returns the minimum-(weight, pair) edge across its cut given
            // the promotions already made, so the union of the results is exactly the set the
            // scan backend's Kruskal pass accepts (per-edge sequential deletion and the batch
            // pass produce the same unique MSF under the total order). Sorting the results by
            // rank makes the shared attribution pass below bit-identical to the scan path.
            ReplacementIndex::Hdt(ix) => {
                let mut candidates: Vec<(Weight, (VertexId, VertexId))> = Vec::new();
                for &(u, v) in &tree_pairs {
                    if let Some((a, b, w)) = ix.delete_tree_with_search(u, v) {
                        candidates.push((w, pair(a, b)));
                    }
                }
                candidates.sort_by(|x, y| x.0.total_cmp(&y.0).then_with(|| x.1.cmp(&y.1)));
                candidates
            }
        };

        // Accept candidates greedily over the local component DSU; attribute each accepted
        // promotion to the deleted edges whose endpoints it (transitively) reconnects.
        let mut promoted: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        let mut dsu = {
            // Candidate endpoints touching components outside `seeds` is impossible (reserve
            // edges are intra-tree), but register them defensively before sizing the DSU.
            for &(_, (a, b)) in &candidates {
                comps.local(&self.sld, a);
                comps.local(&self.sld, b);
            }
            Dsu::new(comps.len())
        };
        let mut pending: Vec<usize> = (0..tree_idx.len()).collect();
        for (w, (a, b)) in candidates {
            let la = comps.local(&self.sld, a);
            let lb = comps.local(&self.sld, b);
            if !dsu.union(la, lb) {
                continue;
            }
            promoted.push((a, b, w));
            pending.retain(|&j| {
                let (lu, lv) = deleted_locals[j];
                if dsu.connected(lu, lv) {
                    changes[tree_idx[j]] =
                        Some(MsfChange::RemovedWithReplacement { promoted: (a, b) });
                    false
                } else {
                    true
                }
            });
        }
        for j in pending {
            changes[tree_idx[j]] = Some(MsfChange::RemovedAndSplit);
        }
        let replacement_time = search_start.elapsed();
        classify_time += replacement_time;

        // ---- promotions ride the batch fast path -----------------------------------------
        let promote_start = Instant::now();
        if !promoted.is_empty() {
            self.sld
                .batch_insert(&promoted)
                .expect("accepted promotions link distinct components and form a forest");
            let is_scan = matches!(self.index, ReplacementIndex::Scan { .. });
            for &(a, b, w) in &promoted {
                if is_scan {
                    // The HDT searches already moved these edges to tree status internally.
                    self.index_remove_nontree(a, b);
                }
                self.membership.insert(pair(a, b), true);
                self.weights.insert(pair(a, b), w);
            }
        }

        apply_time += promote_start.elapsed();

        Ok(BatchOutcome {
            changes: changes
                .into_iter()
                .map(|c| c.expect("classified"))
                .collect(),
            fast_path: tree_pairs.len() + promoted.len(),
            fallback: 0,
            promoted: promoted.iter().map(|&(a, b, _)| (a, b)).collect(),
            classify_time,
            replacement_time,
            apply_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsld::static_sld_kruskal;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Kruskal MSF over an explicit edge list — the oracle.
    fn msf_oracle(n: usize, edges: &[(VertexId, VertexId, Weight)]) -> Vec<(VertexId, VertexId)> {
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by(|&a, &b| {
            edges[a]
                .2
                .total_cmp(&edges[b].2)
                .then_with(|| pair(edges[a].0, edges[a].1).cmp(&pair(edges[b].0, edges[b].1)))
        });
        let mut dsu = Dsu::new(n);
        let mut out = Vec::new();
        for i in order {
            let (a, b, _) = edges[i];
            if dsu.union(a, b) {
                out.push(pair(a, b));
            }
        }
        out.sort();
        out
    }

    fn assert_consistent(g: &DynamicGraphClustering, alive: &[(VertexId, VertexId, Weight)]) {
        let mut tree: Vec<(VertexId, VertexId)> = g
            .graph_edges()
            .into_iter()
            .filter(|&(_, _, _, t)| t)
            .map(|(a, b, _, _)| pair(a, b))
            .collect();
        tree.sort();
        assert_eq!(tree, msf_oracle(g.num_vertices(), alive), "MSF diverged");
        assert_eq!(
            g.sld().dendrogram().canonical_parents(),
            static_sld_kruskal(g.sld().forest()).canonical_parents(),
            "dendrogram diverged"
        );
        g.sld().check_invariants().expect("invariants");
    }

    #[test]
    fn batch_insert_routes_forest_edges_to_fast_path() {
        let mut g = DynamicGraphClustering::new(6);
        let batch = [
            (v(0), v(1), 1.0),
            (v(1), v(2), 2.0),
            (v(3), v(4), 3.0),
            (v(0), v(2), 10.0), // closes a cycle -> fallback, stored non-tree
        ];
        let outcome = g.batch_insert_edges(&batch).unwrap();
        assert_eq!(outcome.fast_path, 3);
        assert_eq!(outcome.fallback, 1);
        assert_eq!(outcome.changes[0], MsfChange::Inserted);
        assert_eq!(outcome.changes[3], MsfChange::StoredNonTree);
        assert_consistent(&g, batch.as_ref());
    }

    #[test]
    fn batch_insert_cycle_edge_can_evict_heavier_tree_edge() {
        let mut g = DynamicGraphClustering::new(3);
        g.insert_edge(v(0), v(1), 100.0).unwrap();
        let batch = [(v(1), v(2), 1.0), (v(0), v(2), 2.0)];
        let outcome = g.batch_insert_edges(&batch).unwrap();
        // (0,2,2.0) closes the cycle {0-1, 1-2, 0-2} and evicts the weight-100 edge.
        assert_eq!(
            outcome.changes[1],
            MsfChange::Replaced {
                evicted: (v(0), v(1))
            }
        );
        assert_consistent(
            &g,
            &[(v(0), v(1), 100.0), (v(1), v(2), 1.0), (v(0), v(2), 2.0)],
        );
    }

    #[test]
    fn batch_insert_validates_before_mutating() {
        let mut g = DynamicGraphClustering::new(3);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        let before = g.graph_edges();
        // Second edge is a duplicate of an existing edge: whole batch must be rejected.
        let err = g
            .batch_insert_edges(&[(v(1), v(2), 2.0), (v(0), v(1), 9.0)])
            .unwrap_err();
        assert_eq!(err, DynSldError::EdgeAlreadyExists(v(0), v(1)));
        assert_eq!(g.graph_edges(), before);
        // In-batch duplicates are rejected too.
        assert!(g
            .batch_insert_edges(&[(v(1), v(2), 2.0), (v(2), v(1), 3.0)])
            .is_err());
        assert!(g.batch_insert_edges(&[(v(2), v(2), 1.0)]).is_err());
    }

    #[test]
    fn batch_delete_promotes_replacements_across_cuts() {
        let mut g = DynamicGraphClustering::new(6);
        // Path 0-1-2-3-4-5 plus two heavy reserve edges bridging across.
        g.batch_insert_edges(&[
            (v(0), v(1), 1.0),
            (v(1), v(2), 2.0),
            (v(2), v(3), 3.0),
            (v(3), v(4), 4.0),
            (v(4), v(5), 5.0),
        ])
        .unwrap();
        g.insert_edge(v(0), v(3), 10.0).unwrap(); // reserve
        g.insert_edge(v(2), v(5), 20.0).unwrap(); // reserve
        let outcome = g.batch_delete_edges(&[(v(1), v(2)), (v(3), v(4))]).unwrap();
        // Both cuts are reconnected by the reserve edges.
        assert_eq!(
            outcome.changes[0],
            MsfChange::RemovedWithReplacement {
                promoted: (v(0), v(3))
            }
        );
        assert_eq!(
            outcome.changes[1],
            MsfChange::RemovedWithReplacement {
                promoted: (v(2), v(5))
            }
        );
        assert_eq!(outcome.promoted, vec![(v(0), v(3)), (v(2), v(5))]);
        assert_eq!(outcome.fast_path, 4); // 2 deletions + 2 promotions
        assert_consistent(
            &g,
            &[
                (v(0), v(1), 1.0),
                (v(2), v(3), 3.0),
                (v(4), v(5), 5.0),
                (v(0), v(3), 10.0),
                (v(2), v(5), 20.0),
            ],
        );
    }

    #[test]
    fn batch_delete_finds_replacements_in_every_affected_tree() {
        // Two separate trees, each losing a tree edge in the same batch, each with a reserve
        // edge bridging its cut. The replacement search must find both promotions — including
        // the one in the tree whose pieces are all smaller than the *other* tree's largest
        // piece (the case a single global largest-component exclusion would still scan, and a
        // per-tree exclusion handles on the small side).
        let mut g = DynamicGraphClustering::new(9);
        // Tree A: path 0-1-2-3-4 (big), tree B: path 5-6-7-8 (small).
        g.batch_insert_edges(&[
            (v(0), v(1), 1.0),
            (v(1), v(2), 2.0),
            (v(2), v(3), 3.0),
            (v(3), v(4), 4.0),
            (v(5), v(6), 1.0),
            (v(6), v(7), 2.0),
            (v(7), v(8), 3.0),
        ])
        .unwrap();
        g.insert_edge(v(0), v(4), 10.0).unwrap(); // reserve across tree A
        g.insert_edge(v(5), v(8), 20.0).unwrap(); // reserve across tree B
        let outcome = g.batch_delete_edges(&[(v(1), v(2)), (v(6), v(7))]).unwrap();
        assert_eq!(
            outcome.changes[0],
            MsfChange::RemovedWithReplacement {
                promoted: (v(0), v(4))
            }
        );
        assert_eq!(
            outcome.changes[1],
            MsfChange::RemovedWithReplacement {
                promoted: (v(5), v(8))
            }
        );
        assert_consistent(
            &g,
            &[
                (v(0), v(1), 1.0),
                (v(2), v(3), 3.0),
                (v(3), v(4), 4.0),
                (v(5), v(6), 1.0),
                (v(7), v(8), 3.0),
                (v(0), v(4), 10.0),
                (v(5), v(8), 20.0),
            ],
        );
    }

    #[test]
    fn batch_delete_mixes_tree_nontree_and_splits() {
        let mut g = DynamicGraphClustering::new(5);
        g.batch_insert_edges(&[(v(0), v(1), 1.0), (v(1), v(2), 2.0), (v(3), v(4), 3.0)])
            .unwrap();
        g.insert_edge(v(0), v(2), 9.0).unwrap(); // reserve
        let outcome = g
            .batch_delete_edges(&[(v(0), v(2)), (v(3), v(4)), (v(0), v(1))])
            .unwrap();
        assert_eq!(outcome.changes[0], MsfChange::RemovedNonTree);
        assert_eq!(outcome.changes[1], MsfChange::RemovedAndSplit);
        assert_eq!(outcome.changes[2], MsfChange::RemovedAndSplit);
        assert!(!g.sld().connected(v(3), v(4)));
        assert_consistent(&g, &[(v(1), v(2), 2.0)]);
    }

    #[test]
    fn batch_delete_validates_before_mutating() {
        let mut g = DynamicGraphClustering::new(3);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        let err = g
            .batch_delete_edges(&[(v(0), v(1)), (v(1), v(2))])
            .unwrap_err();
        assert_eq!(err, DynSldError::EdgeNotFound(v(1), v(2)));
        assert_eq!(g.num_graph_edges(), 1);
        assert!(g.batch_delete_edges(&[(v(0), v(1)), (v(1), v(0))]).is_err());
        assert_eq!(g.num_graph_edges(), 1);
    }

    #[test]
    fn randomized_batches_match_kruskal_oracle() {
        let n = 32usize;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut candidates: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        let mut used = HashSet::new();
        while candidates.len() < 160 {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a == b || !used.insert(pair(v(a), v(b))) {
                continue;
            }
            candidates.push((v(a), v(b), rng.gen::<f64>() * 50.0));
        }
        candidates.shuffle(&mut rng);

        let mut g = DynamicGraphClustering::new(n);
        let mut alive: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        for round in 0..40 {
            if alive.len() < 120 && (alive.is_empty() || rng.gen_bool(0.6)) {
                let batch_size = rng.gen_range(1..12usize);
                let batch: Vec<(VertexId, VertexId, Weight)> = candidates
                    .iter()
                    .filter(|c| !alive.iter().any(|a| pair(a.0, a.1) == pair(c.0, c.1)))
                    .take(batch_size)
                    .copied()
                    .collect();
                if batch.is_empty() {
                    continue;
                }
                let outcome = g.batch_insert_edges(&batch).unwrap();
                assert_eq!(outcome.changes.len(), batch.len());
                alive.extend_from_slice(&batch);
            } else {
                let batch_size = rng.gen_range(1..10usize).min(alive.len());
                let mut idx: Vec<usize> = (0..alive.len()).collect();
                idx.shuffle(&mut rng);
                idx.truncate(batch_size);
                idx.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back first
                let mut batch = Vec::new();
                for i in idx {
                    let (a, b, _) = alive.swap_remove(i);
                    batch.push((a, b));
                }
                let outcome = g.batch_delete_edges(&batch).unwrap();
                assert_eq!(outcome.changes.len(), batch.len());
            }
            assert_consistent(&g, &alive);
            let _ = round;
        }
    }

    #[test]
    fn batch_and_single_application_agree() {
        // The same update sequence applied (a) per edge and (b) in batches must yield
        // identical MSFs and dendrograms.
        let n = 24usize;
        let mut rng = SmallRng::seed_from_u64(13);
        let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        let mut used = HashSet::new();
        while edges.len() < 80 {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a == b || !used.insert(pair(v(a), v(b))) {
                continue;
            }
            edges.push((v(a), v(b), rng.gen::<f64>() * 10.0));
        }
        let mut single = DynamicGraphClustering::new(n);
        let mut batched = DynamicGraphClustering::new(n);
        for chunk in edges.chunks(8) {
            for &(a, b, w) in chunk {
                single.insert_edge(a, b, w).unwrap();
            }
            batched.batch_insert_edges(chunk).unwrap();
        }
        let deletions: Vec<(VertexId, VertexId)> =
            edges.iter().step_by(3).map(|&(a, b, _)| (a, b)).collect();
        for chunk in deletions.chunks(5) {
            for &(a, b) in chunk {
                single.delete_edge(a, b).unwrap();
            }
            batched.batch_delete_edges(chunk).unwrap();
        }
        let canon = |g: &DynamicGraphClustering| {
            let mut e = g.graph_edges();
            e.sort_by_key(|x| pair(x.0, x.1));
            e
        };
        assert_eq!(canon(&single), canon(&batched));
        assert_eq!(
            single.sld().export_snapshot().nodes.len(),
            batched.sld().export_snapshot().nodes.len()
        );
    }
}
