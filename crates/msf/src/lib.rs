//! # dynsld-msf — fully-dynamic single-linkage clustering of a dynamic *graph*
//!
//! The paper's DynSLD algorithms take a dynamic **forest** (the minimum spanning forest of the
//! data) as input (Problem 1). To solve the *fully-dynamic single-linkage clustering problem*
//! (Problem 2 — the input is a dynamic weighted **graph**), they are combined with a dynamic
//! minimum-spanning-forest algorithm (Section 2.2, Section 7): every change to the MSF is fed
//! into DynSLD, so the explicit dendrogram of the current graph is always available.
//!
//! [`DynamicGraphClustering`] implements that end-to-end pipeline:
//!
//! * **Edge insertion**: if the endpoints are in different trees the edge joins the MSF;
//!   otherwise the maximum-weight edge on the tree path between the endpoints is located with a
//!   path-maximum query (`O(log n)`), and if it is heavier than the new edge the two swap roles.
//! * **Edge deletion**: a non-tree edge is simply discarded; deleting a tree edge splits a tree
//!   and the cheapest non-tree edge reconnecting the two sides (if any) is promoted into the
//!   MSF.
//!
//! # Forest backends
//!
//! How the replacement edge is *found* is a policy, selected by
//! [`DynSldOptions::msf_backend`](dynsld::DynSldOptions) (a [`ForestBackend`], defaulting to
//! the `DYNSLD_MSF_BACKEND` environment variable):
//!
//! * [`ForestBackend::Scan`] scans the non-tree edges incident to the smaller side of the
//!   cut: `O(min-side non-tree degree · log n)` per tree-edge deletion (DESIGN.md,
//!   substitution 5 — the paper points to Holm–de Lichtenberg–Thorup \[33\] or the
//!   batch-parallel MSF of Tseng et al. \[48\] for this component).
//! * [`ForestBackend::Hdt`] keeps an HDT-style level structure (see the `hdt` module):
//!   edges carry levels, replacement search amortizes candidate examinations over level
//!   promotions, and only the candidates stored at the levels a cut touches are examined.
//!
//! Both backends are exact and **bit-identical**: same [`MsfChange`] sequences, same
//! dendrograms, same clusterings (pinned by the `msf_backends` proptest suite). They differ
//! only in the work the replacement search performs, observable through
//! [`DynamicGraphClustering::work_counters`].

#![warn(missing_docs)]

use dynsld::{DynSld, DynSldError, DynSldOptions};
use dynsld_forest::{VertexId, Weight};
use std::collections::{HashMap, HashSet};

mod batch;
mod hdt;

pub use batch::BatchOutcome;
pub use dynsld::ForestBackend;

use hdt::HdtIndex;

/// Normalised vertex pair used as the identity of a graph edge.
pub(crate) use dynsld_forest::ordered_pair as pair;

/// How an update changed the minimum spanning forest (and hence the dendrogram).
#[derive(Clone, Debug, PartialEq)]
pub enum MsfChange {
    /// The inserted edge joined two trees and entered the MSF.
    Inserted,
    /// The inserted edge replaced a heavier tree edge on the cycle it closed.
    Replaced {
        /// The tree edge that was evicted from the MSF (by its endpoints).
        evicted: (VertexId, VertexId),
    },
    /// The inserted edge closed a cycle but was not cheaper than any cycle edge; it was stored
    /// as a non-tree edge.
    StoredNonTree,
    /// The deleted edge was a non-tree edge; the MSF is unchanged.
    RemovedNonTree,
    /// The deleted tree edge was replaced by the cheapest non-tree edge across the cut.
    RemovedWithReplacement {
        /// The non-tree edge that was promoted into the MSF (by its endpoints).
        promoted: (VertexId, VertexId),
    },
    /// The deleted tree edge had no replacement; the tree split in two.
    RemovedAndSplit,
}

/// Replacement-search work counters, accumulated across updates and drained with
/// [`DynamicGraphClustering::take_work_counters`]. These are *work* measures, not result
/// measures — both backends produce identical results while reporting very different
/// counter values, which is exactly what the backend head-to-head benchmarks compare.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Replacement candidates subjected to the cut-crossing connectivity test — the
    /// expensive step of a search on either backend (the scan backend tests every
    /// reserve entry incident to the smaller side; the HDT backend tests candidates in
    /// rank order and stops a level at the first one that cannot beat the incumbent).
    pub replacement_edges_scanned: u64,
    /// Non-tree edges moved one level up by the HDT backend (always 0 on the scan backend).
    pub level_promotions: u64,
    /// Replacement searches run (one per tree-edge deletion, plus one per
    /// insertion-eviction on the HDT backend, which replays evictions through the search).
    pub replacement_searches: u64,
}

impl WorkCounters {
    /// Adds `other` into `self` field-wise.
    pub fn merge(&mut self, other: &WorkCounters) {
        self.replacement_edges_scanned += other.replacement_edges_scanned;
        self.level_promotions += other.level_promotions;
        self.replacement_searches += other.replacement_searches;
    }
}

/// The replacement-search index behind [`DynamicGraphClustering`]: one variant per
/// [`ForestBackend`].
#[derive(Clone, Debug)]
pub(crate) enum ReplacementIndex {
    /// Non-tree edges indexed per vertex (both endpoints); search scans the smaller side.
    Scan {
        /// `reserve[v]` holds the non-tree edges incident to `v`.
        reserve: Vec<HashSet<(VertexId, VertexId)>>,
    },
    /// HDT-style level structure (see the `hdt` module).
    Hdt(HdtIndex),
}

/// End-to-end fully-dynamic single-linkage clustering of a weighted graph: a dynamic MSF front
/// end feeding the DynSLD dendrogram maintenance algorithms.
#[derive(Clone, Debug)]
pub struct DynamicGraphClustering {
    pub(crate) sld: DynSld,
    /// All alive graph edges by endpoint pair: `true` if currently a tree (MSF) edge.
    pub(crate) membership: HashMap<(VertexId, VertexId), bool>,
    /// Weights of all alive graph edges.
    pub(crate) weights: HashMap<(VertexId, VertexId), Weight>,
    /// Backend-specific replacement-edge index.
    pub(crate) index: ReplacementIndex,
    /// Scan-backend work counters (the HDT index keeps its own; both are drained together).
    pub(crate) counters: WorkCounters,
}

/// The vertices of the MSF component of `sld` containing `v`.
pub(crate) fn component_members(sld: &DynSld, v: VertexId) -> Vec<VertexId> {
    // Walk the component through the forest adjacency (the component is a tree).
    let mut seen = HashSet::new();
    let mut stack = vec![v];
    seen.insert(v);
    let mut out = vec![v];
    while let Some(x) = stack.pop() {
        for (y, _) in sld.forest().neighbors(x) {
            if seen.insert(y) {
                out.push(y);
                stack.push(y);
            }
        }
    }
    out
}

/// Deterministic replacement-edge order: strictly cheaper wins, ties break on the
/// normalised endpoint pair. The reserve sets are hash sets with nondeterministic
/// iteration order, so without the tie-break the promoted edge among equal-weight
/// candidates would vary from run to run — this keeps engine-level tests and benchmark
/// traces reproducible, and gives both forest backends one total order to agree on.
pub(crate) fn replacement_beats(
    best: Option<&(Weight, (VertexId, VertexId))>,
    w: Weight,
    key: (VertexId, VertexId),
) -> bool {
    match best {
        None => true,
        Some(&(bw, bkey)) => match w.total_cmp(&bw) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => key < bkey,
            std::cmp::Ordering::Greater => false,
        },
    }
}

impl DynamicGraphClustering {
    /// Creates an empty graph on `n` vertices with default DynSLD options (including the
    /// `DYNSLD_MSF_BACKEND`-selected forest backend).
    pub fn new(n: usize) -> Self {
        Self::with_options(n, DynSldOptions::default())
    }

    /// Creates an empty graph on `n` vertices with the given DynSLD options.
    /// `options.msf_backend` selects the replacement-search backend.
    pub fn with_options(n: usize, options: DynSldOptions) -> Self {
        let index = match options.msf_backend {
            ForestBackend::Scan => ReplacementIndex::Scan {
                reserve: vec![HashSet::new(); n],
            },
            ForestBackend::Hdt => ReplacementIndex::Hdt(HdtIndex::new(n)),
        };
        DynamicGraphClustering {
            sld: DynSld::with_options(n, options),
            membership: HashMap::new(),
            weights: HashMap::new(),
            index,
            counters: WorkCounters::default(),
        }
    }

    /// The forest backend this instance was constructed with.
    pub fn backend(&self) -> ForestBackend {
        match self.index {
            ReplacementIndex::Scan { .. } => ForestBackend::Scan,
            ReplacementIndex::Hdt(_) => ForestBackend::Hdt,
        }
    }

    /// Cumulative replacement-search work counters since the last
    /// [`take_work_counters`](Self::take_work_counters) (or construction).
    pub fn work_counters(&self) -> WorkCounters {
        let mut c = self.counters;
        if let ReplacementIndex::Hdt(ix) = &self.index {
            c.merge(ix.counters());
        }
        c
    }

    /// Drains and returns the replacement-search work counters (the engine calls this once
    /// per flush to attribute work to served metrics).
    pub fn take_work_counters(&mut self) -> WorkCounters {
        let mut c = std::mem::take(&mut self.counters);
        if let ReplacementIndex::Hdt(ix) = &mut self.index {
            c.merge(&std::mem::take(ix.counters_mut()));
        }
        c
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.sld.num_vertices()
    }

    /// Number of alive graph edges (tree and non-tree).
    pub fn num_graph_edges(&self) -> usize {
        self.membership.len()
    }

    /// Number of MSF (tree) edges.
    pub fn num_tree_edges(&self) -> usize {
        self.sld.num_edges()
    }

    /// The underlying DynSLD structure (dendrogram, forest, queries).
    pub fn sld(&self) -> &DynSld {
        &self.sld
    }

    /// Mutable access to the underlying DynSLD structure, e.g. for running queries that need
    /// `&mut` (threshold, cluster size, ...).
    pub fn sld_mut(&mut self) -> &mut DynSld {
        &mut self.sld
    }

    /// Exports a dendrogram snapshot of the MSF, reusing the previous export where possible
    /// (see [`DynSld::export_snapshot_incremental`]) — the hot republish path of the serving
    /// layers. Bit-identical to `self.sld().export_snapshot()`.
    pub fn export_snapshot_incremental(&mut self) -> dynsld::DendrogramSnapshot {
        self.sld.export_snapshot_incremental()
    }

    /// Returns the weight of the graph edge `{u, v}` if it is alive.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.weights.get(&pair(u, v)).copied()
    }

    /// Returns true if `{u, v}` is currently an MSF edge.
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.membership.get(&pair(u, v)).copied().unwrap_or(false)
    }

    /// Adds `k` isolated vertices and returns the first new id.
    pub fn add_vertices(&mut self, k: usize) -> VertexId {
        let first = self.sld.add_vertices(k);
        match &mut self.index {
            ReplacementIndex::Scan { reserve } => {
                reserve.resize_with(self.sld.num_vertices(), HashSet::new);
            }
            ReplacementIndex::Hdt(ix) => ix.add_vertices(k),
        }
        first
    }

    /// Registers a new non-tree edge with the backend index (reserve bookkeeping only; the
    /// caller maintains `membership`/`weights`).
    pub(crate) fn index_add_nontree(&mut self, u: VertexId, v: VertexId, weight: Weight) {
        match &mut self.index {
            ReplacementIndex::Scan { reserve } => {
                let key = pair(u, v);
                reserve[u.index()].insert(key);
                reserve[v.index()].insert(key);
            }
            ReplacementIndex::Hdt(ix) => ix.add_nontree(u, v, weight),
        }
    }

    /// Unregisters a non-tree edge from the backend index.
    pub(crate) fn index_remove_nontree(&mut self, u: VertexId, v: VertexId) {
        match &mut self.index {
            ReplacementIndex::Scan { reserve } => {
                let key = pair(u, v);
                reserve[u.index()].remove(&key);
                reserve[v.index()].remove(&key);
            }
            ReplacementIndex::Hdt(ix) => ix.remove_nontree(u, v),
        }
    }

    /// Registers a new tree edge with the backend index (no-op for the scan backend, which
    /// only tracks non-tree edges).
    pub(crate) fn index_add_tree(&mut self, u: VertexId, v: VertexId, weight: Weight) {
        if let ReplacementIndex::Hdt(ix) = &mut self.index {
            ix.add_tree(u, v, weight);
        }
        let _ = weight;
    }

    /// Inserts the graph edge `{u, v}` with the given weight and updates the MSF and dendrogram.
    ///
    /// Returns how the MSF changed. Errors if the edge already exists or the endpoints are
    /// invalid.
    pub fn insert_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Weight,
    ) -> Result<MsfChange, DynSldError> {
        if u == v {
            return Err(DynSldError::SelfLoop(u));
        }
        for x in [u, v] {
            if x.index() >= self.num_vertices() {
                return Err(DynSldError::VertexOutOfRange(x));
            }
        }
        let key = pair(u, v);
        if self.membership.contains_key(&key) {
            // Parallel edges are not supported.
            return Err(DynSldError::EdgeAlreadyExists(u, v));
        }
        if !self.sld.connected(u, v) {
            self.sld.insert(u, v, weight)?;
            self.membership.insert(key, true);
            self.weights.insert(key, weight);
            self.index_add_tree(u, v, weight);
            return Ok(MsfChange::Inserted);
        }
        // The edge closes a cycle: compare against the heaviest tree edge on the path.
        let heaviest = self
            .sld
            .path_max_edge(u, v)
            .expect("connected endpoints have a tree path");
        let heaviest_weight = self.sld.forest().weight(heaviest);
        let (hu, hv) = self.sld.forest().endpoints(heaviest);
        // Strict improvement required; ties keep the incumbent (consistent with rank order,
        // where the older edge has the smaller id and thus the smaller rank).
        if weight < heaviest_weight {
            self.sld.delete(hu, hv)?;
            self.membership.insert(pair(hu, hv), false);
            self.sld.insert(u, v, weight)?;
            self.membership.insert(key, true);
            self.weights.insert(key, weight);
            match &mut self.index {
                ReplacementIndex::Scan { reserve } => {
                    let hkey = pair(hu, hv);
                    reserve[hu.index()].insert(hkey);
                    reserve[hv.index()].insert(hkey);
                }
                ReplacementIndex::Hdt(ix) => {
                    // Replay the eviction through the level-structured search: the new
                    // edge is provably the unique replacement for the evicted edge's cut
                    // (exchange property), and routing it through the search keeps every
                    // level forest consistent (see the hdt module docs).
                    ix.add_nontree(u, v, weight);
                    let promoted = ix.delete_tree_with_search(hu, hv);
                    debug_assert_eq!(
                        promoted.map(|(a, b, _)| (a, b)),
                        Some(key),
                        "the cycle-closing edge is the unique replacement for its eviction"
                    );
                    ix.add_nontree(hu, hv, heaviest_weight);
                }
            }
            Ok(MsfChange::Replaced { evicted: (hu, hv) })
        } else {
            self.membership.insert(key, false);
            self.weights.insert(key, weight);
            self.index_add_nontree(u, v, weight);
            Ok(MsfChange::StoredNonTree)
        }
    }

    /// Deletes the graph edge `{u, v}` and updates the MSF and dendrogram.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<MsfChange, DynSldError> {
        let key = pair(u, v);
        let Some(&is_tree) = self.membership.get(&key) else {
            return Err(DynSldError::EdgeNotFound(u, v));
        };
        self.membership.remove(&key);
        self.weights.remove(&key);
        if !is_tree {
            self.index_remove_nontree(u, v);
            return Ok(MsfChange::RemovedNonTree);
        }
        self.sld.delete(u, v)?;
        // Find the cheapest reserve edge reconnecting the two sides; how depends on the
        // backend, but the answer — the minimum-(weight, pair) crossing edge — does not.
        let best = match &mut self.index {
            ReplacementIndex::Scan { reserve } => {
                self.counters.replacement_searches += 1;
                // Scan the non-tree edges incident to the smaller side of the cut.
                let small = if self.sld.component_size(u) <= self.sld.component_size(v) {
                    u
                } else {
                    v
                };
                let mut best: Option<(Weight, (VertexId, VertexId))> = None;
                for member in component_members(&self.sld, small) {
                    for &(a, b) in &reserve[member.index()] {
                        self.counters.replacement_edges_scanned += 1;
                        let w = self.weights[&pair(a, b)];
                        // The edge reconnects the cut iff exactly one endpoint lies on the
                        // small side.
                        if self.sld.connected(a, small) != self.sld.connected(b, small)
                            && replacement_beats(best.as_ref(), w, pair(a, b))
                        {
                            best = Some((w, pair(a, b)));
                        }
                    }
                }
                best.map(|(w, (a, b))| (a, b, w))
            }
            ReplacementIndex::Hdt(ix) => ix.delete_tree_with_search(u, v),
        };
        match best {
            Some((a, b, w)) => {
                if let ReplacementIndex::Scan { reserve } = &mut self.index {
                    let rkey = pair(a, b);
                    reserve[a.index()].remove(&rkey);
                    reserve[b.index()].remove(&rkey);
                }
                self.sld.insert(a, b, w)?;
                self.membership.insert(pair(a, b), true);
                Ok(MsfChange::RemovedWithReplacement { promoted: (a, b) })
            }
            None => Ok(MsfChange::RemovedAndSplit),
        }
    }

    /// Changes the weight of an existing edge (delete + re-insert).
    pub fn update_weight(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Weight,
    ) -> Result<MsfChange, DynSldError> {
        self.delete_edge(u, v)?;
        self.insert_edge(u, v, weight)
    }

    /// All alive graph edges as `(u, v, weight, is_tree)`.
    pub fn graph_edges(&self) -> Vec<(VertexId, VertexId, Weight, bool)> {
        self.membership
            .iter()
            .map(|(&(u, v), &tree)| (u, v, self.weights[&(u, v)], tree))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsld::static_sld_kruskal;
    use dynsld_forest::Dsu;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn backend_options(backend: ForestBackend) -> DynSldOptions {
        DynSldOptions {
            msf_backend: backend,
            ..Default::default()
        }
    }

    /// Kruskal MSF over an explicit edge list — the oracle.
    fn msf_oracle(n: usize, edges: &[(VertexId, VertexId, Weight)]) -> Vec<(VertexId, VertexId)> {
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by(|&a, &b| edges[a].2.partial_cmp(&edges[b].2).unwrap());
        let mut dsu = Dsu::new(n);
        let mut out = Vec::new();
        for i in order {
            let (a, b, _) = edges[i];
            if dsu.union(a, b) {
                out.push(pair(a, b));
            }
        }
        out.sort();
        out
    }

    fn assert_msf_matches(g: &DynamicGraphClustering, alive: &[(VertexId, VertexId, Weight)]) {
        let mut tree: Vec<(VertexId, VertexId)> = g
            .graph_edges()
            .into_iter()
            .filter(|&(_, _, _, t)| t)
            .map(|(a, b, _, _)| pair(a, b))
            .collect();
        tree.sort();
        assert_eq!(
            tree,
            msf_oracle(g.num_vertices(), alive),
            "MSF edge set diverged"
        );
        // The dendrogram must equal static recomputation on the maintained forest.
        assert_eq!(
            g.sld().dendrogram().canonical_parents(),
            static_sld_kruskal(g.sld().forest()).canonical_parents(),
            "dendrogram diverged"
        );
        g.sld().check_invariants().expect("invariants");
    }

    #[test]
    fn insert_builds_msf_with_replacements() {
        let mut g = DynamicGraphClustering::new(4);
        assert_eq!(g.insert_edge(v(0), v(1), 5.0).unwrap(), MsfChange::Inserted);
        assert_eq!(g.insert_edge(v(1), v(2), 3.0).unwrap(), MsfChange::Inserted);
        // 0-2 with weight 1 closes a cycle and evicts the heaviest cycle edge (0-1, weight 5).
        assert_eq!(
            g.insert_edge(v(0), v(2), 1.0).unwrap(),
            MsfChange::Replaced {
                evicted: (v(0), v(1))
            }
        );
        assert!(!g.is_tree_edge(v(0), v(1)));
        assert!(g.is_tree_edge(v(0), v(2)));
        // A heavy edge on a cycle stays non-tree.
        assert_eq!(
            g.insert_edge(v(1), v(0), 100.0),
            Err(DynSldError::EdgeAlreadyExists(v(1), v(0)))
        );
        assert_eq!(g.insert_edge(v(2), v(3), 2.0).unwrap(), MsfChange::Inserted);
        assert_eq!(
            g.insert_edge(v(1), v(3), 50.0).unwrap(),
            MsfChange::StoredNonTree
        );
        assert_eq!(g.num_graph_edges(), 5);
        assert_eq!(g.num_tree_edges(), 3);
    }

    #[test]
    fn delete_promotes_replacement_edges() {
        let mut g = DynamicGraphClustering::new(4);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(2), 2.0).unwrap();
        g.insert_edge(v(2), v(3), 3.0).unwrap();
        g.insert_edge(v(0), v(3), 10.0).unwrap(); // non-tree reserve
        assert_eq!(
            g.delete_edge(v(1), v(2)).unwrap(),
            MsfChange::RemovedWithReplacement {
                promoted: (v(0), v(3))
            }
        );
        assert!(g.is_tree_edge(v(0), v(3)));
        // Deleting a non-tree edge leaves the MSF untouched.
        g.insert_edge(v(1), v(2), 20.0).unwrap();
        assert_eq!(
            g.delete_edge(v(1), v(2)).unwrap(),
            MsfChange::RemovedNonTree
        );
        // Deleting with no replacement splits the graph.
        assert_eq!(
            g.delete_edge(v(0), v(1)).unwrap(),
            MsfChange::RemovedAndSplit
        );
        assert!(!g.sld().connected(v(0), v(1)));
    }

    #[test]
    fn errors_are_reported() {
        let mut g = DynamicGraphClustering::new(3);
        assert_eq!(
            g.insert_edge(v(0), v(0), 1.0),
            Err(DynSldError::SelfLoop(v(0)))
        );
        assert_eq!(
            g.insert_edge(v(0), v(5), 1.0),
            Err(DynSldError::VertexOutOfRange(v(5)))
        );
        assert_eq!(
            g.delete_edge(v(0), v(1)),
            Err(DynSldError::EdgeNotFound(v(0), v(1)))
        );
    }

    #[test]
    fn randomized_graph_churn_matches_kruskal_oracle() {
        for backend in [ForestBackend::Scan, ForestBackend::Hdt] {
            let n = 40usize;
            let mut rng = SmallRng::seed_from_u64(42);
            // Candidate edge set: a few hundred random pairs with distinct weights.
            let mut candidates: Vec<(VertexId, VertexId, Weight)> = Vec::new();
            let mut used = HashSet::new();
            while candidates.len() < 250 {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a == b || !used.insert(pair(v(a), v(b))) {
                    continue;
                }
                candidates.push((v(a), v(b), candidates.len() as f64 + rng.gen::<f64>()));
            }
            candidates.shuffle(&mut rng);

            let mut g = DynamicGraphClustering::with_options(n, backend_options(backend));
            let mut alive: Vec<(VertexId, VertexId, Weight)> = Vec::new();
            for step in 0..600 {
                let do_insert =
                    alive.is_empty() || (alive.len() < candidates.len() && rng.gen_bool(0.55));
                if do_insert {
                    // Insert a candidate that is not alive yet.
                    let next = candidates
                        .iter()
                        .find(|c| !alive.iter().any(|a| pair(a.0, a.1) == pair(c.0, c.1)))
                        .copied()
                        .expect("candidate available");
                    g.insert_edge(next.0, next.1, next.2).unwrap();
                    alive.push(next);
                } else {
                    let idx = rng.gen_range(0..alive.len());
                    let (a, b, _) = alive.swap_remove(idx);
                    g.delete_edge(a, b).unwrap();
                }
                if step % 10 == 0 {
                    assert_msf_matches(&g, &alive);
                }
            }
            assert_msf_matches(&g, &alive);
            let counters = g.work_counters();
            assert!(counters.replacement_searches > 0, "searches were counted");
            assert_eq!(
                counters.level_promotions > 0,
                backend == ForestBackend::Hdt,
                "level promotions are an HDT-only phenomenon"
            );
        }
    }

    #[test]
    fn backends_report_identical_changes_on_a_churn_stream() {
        let n = 30usize;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut scan =
            DynamicGraphClustering::with_options(n, backend_options(ForestBackend::Scan));
        let mut hdt = DynamicGraphClustering::with_options(n, backend_options(ForestBackend::Hdt));
        assert_eq!(scan.backend(), ForestBackend::Scan);
        assert_eq!(hdt.backend(), ForestBackend::Hdt);
        let mut alive: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..500 {
            if alive.is_empty() || rng.gen_bool(0.6) {
                let a = v(rng.gen_range(0..n as u32));
                let b = v(rng.gen_range(0..n as u32));
                if a == b || alive.contains(&pair(a, b)) {
                    continue;
                }
                // Coarse weights on purpose: ties exercise the deterministic tie-break.
                let w = rng.gen_range(0..8) as f64;
                assert_eq!(scan.insert_edge(a, b, w), hdt.insert_edge(a, b, w));
                alive.push(pair(a, b));
            } else {
                let (a, b) = alive.swap_remove(rng.gen_range(0..alive.len()));
                assert_eq!(scan.delete_edge(a, b), hdt.delete_edge(a, b));
            }
        }
        assert_eq!(
            scan.sld().dendrogram().canonical_parents(),
            hdt.sld().dendrogram().canonical_parents()
        );
    }

    #[test]
    fn take_work_counters_drains() {
        let mut g = DynamicGraphClustering::with_options(4, backend_options(ForestBackend::Hdt));
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(2), 2.0).unwrap();
        g.insert_edge(v(0), v(2), 3.0).unwrap(); // non-tree
        g.delete_edge(v(0), v(1)).unwrap(); // tree deletion: search runs
        let taken = g.take_work_counters();
        assert!(taken.replacement_searches >= 1);
        assert_eq!(g.work_counters(), WorkCounters::default());
    }

    #[test]
    fn update_weight_can_promote_and_demote() {
        for backend in [ForestBackend::Scan, ForestBackend::Hdt] {
            let mut g = DynamicGraphClustering::with_options(3, backend_options(backend));
            g.insert_edge(v(0), v(1), 1.0).unwrap();
            g.insert_edge(v(1), v(2), 2.0).unwrap();
            g.insert_edge(v(0), v(2), 5.0).unwrap(); // non-tree
            assert!(!g.is_tree_edge(v(0), v(2)));
            g.update_weight(v(0), v(2), 0.5).unwrap();
            assert!(g.is_tree_edge(v(0), v(2)));
            assert!(!g.is_tree_edge(v(1), v(2)));
            let alive = vec![(v(0), v(1), 1.0), (v(1), v(2), 2.0), (v(0), v(2), 0.5)];
            assert_msf_matches(&g, &alive);
        }
    }

    #[test]
    fn threshold_queries_through_the_pipeline() {
        let mut g = DynamicGraphClustering::with_options(
            6,
            DynSldOptions {
                maintain_spine_index: true,
                ..Default::default()
            },
        );
        for (a, b, w) in [
            (0, 1, 1.0),
            (1, 2, 4.0),
            (2, 3, 2.0),
            (3, 4, 8.0),
            (4, 5, 3.0),
            (0, 2, 9.0), // non-tree
        ] {
            g.insert_edge(v(a), v(b), w).unwrap();
        }
        assert!(g.sld_mut().threshold_connected(v(0), v(2), 4.0));
        assert!(!g.sld_mut().threshold_connected(v(0), v(2), 3.0));
        assert_eq!(g.sld_mut().cluster_size(v(0), 4.5), 4);
        assert_eq!(g.sld_mut().cluster_size(v(5), 3.5), 2);
        // Deleting the weight-4 tree edge promotes the weight-9 reserve edge; the bottleneck
        // between 0 and 2 becomes 9.
        g.delete_edge(v(1), v(2)).unwrap();
        assert!(!g.sld_mut().threshold_connected(v(0), v(2), 4.0));
        assert!(g.sld_mut().threshold_connected(v(0), v(2), 9.0));
    }
}
