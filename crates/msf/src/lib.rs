//! # dynsld-msf — fully-dynamic single-linkage clustering of a dynamic *graph*
//!
//! The paper's DynSLD algorithms take a dynamic **forest** (the minimum spanning forest of the
//! data) as input (Problem 1). To solve the *fully-dynamic single-linkage clustering problem*
//! (Problem 2 — the input is a dynamic weighted **graph**), they are combined with a dynamic
//! minimum-spanning-forest algorithm (Section 2.2, Section 7): every change to the MSF is fed
//! into DynSLD, so the explicit dendrogram of the current graph is always available.
//!
//! [`DynamicGraphClustering`] implements that end-to-end pipeline:
//!
//! * **Edge insertion**: if the endpoints are in different trees the edge joins the MSF;
//!   otherwise the maximum-weight edge on the tree path between the endpoints is located with a
//!   path-maximum query (`O(log n)`), and if it is heavier than the new edge the two swap roles.
//! * **Edge deletion**: a non-tree edge is simply discarded; deleting a tree edge splits a tree
//!   and the cheapest non-tree edge reconnecting the two sides (if any) is promoted into the
//!   MSF.
//!
//! Substitution note (DESIGN.md, substitution 5): the paper points to Holm–de Lichtenberg–Thorup
//! \[33\] or the batch-parallel MSF of Tseng et al. \[48\] for this component. This implementation
//! is *exact* but searches for a replacement edge by scanning the non-tree edges incident to the
//! smaller side of the cut, so a deletion costs `O(min-side non-tree degree · log n)` rather
//! than HDT's polylogarithmic amortized bound. Every MSF change is still propagated to DynSLD
//! through the paper's update algorithms, so the dendrogram-maintenance cost matches the paper.

#![warn(missing_docs)]

use dynsld::{DynSld, DynSldError, DynSldOptions};
use dynsld_forest::{VertexId, Weight};
use std::collections::{HashMap, HashSet};

mod batch;

pub use batch::BatchOutcome;

/// Normalised vertex pair used as the identity of a graph edge.
pub(crate) use dynsld_forest::ordered_pair as pair;

/// How an update changed the minimum spanning forest (and hence the dendrogram).
#[derive(Clone, Debug, PartialEq)]
pub enum MsfChange {
    /// The inserted edge joined two trees and entered the MSF.
    Inserted,
    /// The inserted edge replaced a heavier tree edge on the cycle it closed.
    Replaced {
        /// The tree edge that was evicted from the MSF (by its endpoints).
        evicted: (VertexId, VertexId),
    },
    /// The inserted edge closed a cycle but was not cheaper than any cycle edge; it was stored
    /// as a non-tree edge.
    StoredNonTree,
    /// The deleted edge was a non-tree edge; the MSF is unchanged.
    RemovedNonTree,
    /// The deleted tree edge was replaced by the cheapest non-tree edge across the cut.
    RemovedWithReplacement {
        /// The non-tree edge that was promoted into the MSF (by its endpoints).
        promoted: (VertexId, VertexId),
    },
    /// The deleted tree edge had no replacement; the tree split in two.
    RemovedAndSplit,
}

/// End-to-end fully-dynamic single-linkage clustering of a weighted graph: a dynamic MSF front
/// end feeding the DynSLD dendrogram maintenance algorithms.
#[derive(Clone, Debug)]
pub struct DynamicGraphClustering {
    pub(crate) sld: DynSld,
    /// All alive graph edges by endpoint pair: `true` if currently a tree (MSF) edge.
    pub(crate) membership: HashMap<(VertexId, VertexId), bool>,
    /// Weights of all alive graph edges.
    pub(crate) weights: HashMap<(VertexId, VertexId), Weight>,
    /// Non-tree edges indexed per vertex (both endpoints), for replacement-edge search.
    pub(crate) reserve: Vec<HashSet<(VertexId, VertexId)>>,
}

impl DynamicGraphClustering {
    /// Creates an empty graph on `n` vertices with default DynSLD options.
    pub fn new(n: usize) -> Self {
        Self::with_options(n, DynSldOptions::default())
    }

    /// Creates an empty graph on `n` vertices with the given DynSLD options.
    pub fn with_options(n: usize, options: DynSldOptions) -> Self {
        DynamicGraphClustering {
            sld: DynSld::with_options(n, options),
            membership: HashMap::new(),
            weights: HashMap::new(),
            reserve: vec![HashSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.sld.num_vertices()
    }

    /// Number of alive graph edges (tree and non-tree).
    pub fn num_graph_edges(&self) -> usize {
        self.membership.len()
    }

    /// Number of MSF (tree) edges.
    pub fn num_tree_edges(&self) -> usize {
        self.sld.num_edges()
    }

    /// The underlying DynSLD structure (dendrogram, forest, queries).
    pub fn sld(&self) -> &DynSld {
        &self.sld
    }

    /// Mutable access to the underlying DynSLD structure, e.g. for running queries that need
    /// `&mut` (threshold, cluster size, ...).
    pub fn sld_mut(&mut self) -> &mut DynSld {
        &mut self.sld
    }

    /// Exports a dendrogram snapshot of the MSF, reusing the previous export where possible
    /// (see [`DynSld::export_snapshot_incremental`]) — the hot republish path of the serving
    /// layers. Bit-identical to `self.sld().export_snapshot()`.
    pub fn export_snapshot_incremental(&mut self) -> dynsld::DendrogramSnapshot {
        self.sld.export_snapshot_incremental()
    }

    /// Returns the weight of the graph edge `{u, v}` if it is alive.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.weights.get(&pair(u, v)).copied()
    }

    /// Returns true if `{u, v}` is currently an MSF edge.
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.membership.get(&pair(u, v)).copied().unwrap_or(false)
    }

    /// Adds `k` isolated vertices and returns the first new id.
    pub fn add_vertices(&mut self, k: usize) -> VertexId {
        let first = self.sld.add_vertices(k);
        self.reserve
            .resize_with(self.sld.num_vertices(), HashSet::new);
        first
    }

    fn add_reserve(&mut self, u: VertexId, v: VertexId, weight: Weight) {
        let key = pair(u, v);
        self.reserve[u.index()].insert(key);
        self.reserve[v.index()].insert(key);
        self.membership.insert(key, false);
        self.weights.insert(key, weight);
    }

    fn remove_reserve(&mut self, u: VertexId, v: VertexId) {
        let key = pair(u, v);
        self.reserve[u.index()].remove(&key);
        self.reserve[v.index()].remove(&key);
    }

    /// Inserts the graph edge `{u, v}` with the given weight and updates the MSF and dendrogram.
    ///
    /// Returns how the MSF changed. Errors if the edge already exists or the endpoints are
    /// invalid.
    pub fn insert_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Weight,
    ) -> Result<MsfChange, DynSldError> {
        if u == v {
            return Err(DynSldError::SelfLoop(u));
        }
        for x in [u, v] {
            if x.index() >= self.num_vertices() {
                return Err(DynSldError::VertexOutOfRange(x));
            }
        }
        let key = pair(u, v);
        if self.membership.contains_key(&key) {
            // Parallel edges are not supported.
            return Err(DynSldError::EdgeAlreadyExists(u, v));
        }
        if !self.sld.connected(u, v) {
            self.sld.insert(u, v, weight)?;
            self.membership.insert(key, true);
            self.weights.insert(key, weight);
            return Ok(MsfChange::Inserted);
        }
        // The edge closes a cycle: compare against the heaviest tree edge on the path.
        let heaviest = self
            .sld
            .path_max_edge(u, v)
            .expect("connected endpoints have a tree path");
        let heaviest_weight = self.sld.forest().weight(heaviest);
        let (hu, hv) = self.sld.forest().endpoints(heaviest);
        // Strict improvement required; ties keep the incumbent (consistent with rank order,
        // where the older edge has the smaller id and thus the smaller rank).
        if weight < heaviest_weight {
            self.sld.delete(hu, hv)?;
            self.add_reserve(hu, hv, heaviest_weight);
            self.sld.insert(u, v, weight)?;
            self.membership.insert(key, true);
            self.weights.insert(key, weight);
            Ok(MsfChange::Replaced { evicted: (hu, hv) })
        } else {
            self.add_reserve(u, v, weight);
            Ok(MsfChange::StoredNonTree)
        }
    }

    /// Deletes the graph edge `{u, v}` and updates the MSF and dendrogram.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<MsfChange, DynSldError> {
        let key = pair(u, v);
        let Some(&is_tree) = self.membership.get(&key) else {
            return Err(DynSldError::EdgeNotFound(u, v));
        };
        self.membership.remove(&key);
        self.weights.remove(&key);
        if !is_tree {
            self.remove_reserve(u, v);
            return Ok(MsfChange::RemovedNonTree);
        }
        self.sld.delete(u, v)?;
        // Find the cheapest reserve edge reconnecting the two sides: scan the non-tree edges
        // incident to the smaller side of the cut.
        let (small, _large) = if self.sld.component_size(u) <= self.sld.component_size(v) {
            (u, v)
        } else {
            (v, u)
        };
        let mut best: Option<(Weight, (VertexId, VertexId))> = None;
        for member in self.component_members(small) {
            for &(a, b) in &self.reserve[member.index()] {
                let w = self.weights[&pair(a, b)];
                // The edge reconnects the cut iff exactly one endpoint lies on the small side.
                if self.sld.connected(a, small) != self.sld.connected(b, small)
                    && Self::replacement_beats(best.as_ref(), w, pair(a, b))
                {
                    best = Some((w, pair(a, b)));
                }
            }
        }
        match best {
            Some((w, (a, b))) => {
                self.remove_reserve(a, b);
                self.sld.insert(a, b, w)?;
                self.membership.insert(pair(a, b), true);
                Ok(MsfChange::RemovedWithReplacement { promoted: (a, b) })
            }
            None => Ok(MsfChange::RemovedAndSplit),
        }
    }

    /// Changes the weight of an existing edge (delete + re-insert).
    pub fn update_weight(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Weight,
    ) -> Result<MsfChange, DynSldError> {
        self.delete_edge(u, v)?;
        self.insert_edge(u, v, weight)
    }

    /// Deterministic replacement-edge order: strictly cheaper wins, ties break on the
    /// normalised endpoint pair. The reserve sets are hash sets with nondeterministic
    /// iteration order, so without the tie-break the promoted edge among equal-weight
    /// candidates would vary from run to run — this keeps engine-level tests and benchmark
    /// traces reproducible.
    fn replacement_beats(
        best: Option<&(Weight, (VertexId, VertexId))>,
        w: Weight,
        key: (VertexId, VertexId),
    ) -> bool {
        match best {
            None => true,
            Some(&(bw, bkey)) => match w.total_cmp(&bw) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => key < bkey,
                std::cmp::Ordering::Greater => false,
            },
        }
    }

    /// The vertices of the MSF component containing `v`.
    fn component_members(&self, v: VertexId) -> Vec<VertexId> {
        // Walk the component through the forest adjacency (the component is a tree).
        let mut seen = HashSet::new();
        let mut stack = vec![v];
        seen.insert(v);
        let mut out = vec![v];
        while let Some(x) = stack.pop() {
            for (y, _) in self.sld.forest().neighbors(x) {
                if seen.insert(y) {
                    out.push(y);
                    stack.push(y);
                }
            }
        }
        out
    }

    /// All alive graph edges as `(u, v, weight, is_tree)`.
    pub fn graph_edges(&self) -> Vec<(VertexId, VertexId, Weight, bool)> {
        self.membership
            .iter()
            .map(|(&(u, v), &tree)| (u, v, self.weights[&(u, v)], tree))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsld::static_sld_kruskal;
    use dynsld_forest::Dsu;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Kruskal MSF over an explicit edge list — the oracle.
    fn msf_oracle(n: usize, edges: &[(VertexId, VertexId, Weight)]) -> Vec<(VertexId, VertexId)> {
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by(|&a, &b| edges[a].2.partial_cmp(&edges[b].2).unwrap());
        let mut dsu = Dsu::new(n);
        let mut out = Vec::new();
        for i in order {
            let (a, b, _) = edges[i];
            if dsu.union(a, b) {
                out.push(pair(a, b));
            }
        }
        out.sort();
        out
    }

    fn assert_msf_matches(g: &DynamicGraphClustering, alive: &[(VertexId, VertexId, Weight)]) {
        let mut tree: Vec<(VertexId, VertexId)> = g
            .graph_edges()
            .into_iter()
            .filter(|&(_, _, _, t)| t)
            .map(|(a, b, _, _)| pair(a, b))
            .collect();
        tree.sort();
        assert_eq!(
            tree,
            msf_oracle(g.num_vertices(), alive),
            "MSF edge set diverged"
        );
        // The dendrogram must equal static recomputation on the maintained forest.
        assert_eq!(
            g.sld().dendrogram().canonical_parents(),
            static_sld_kruskal(g.sld().forest()).canonical_parents(),
            "dendrogram diverged"
        );
        g.sld().check_invariants().expect("invariants");
    }

    #[test]
    fn insert_builds_msf_with_replacements() {
        let mut g = DynamicGraphClustering::new(4);
        assert_eq!(g.insert_edge(v(0), v(1), 5.0).unwrap(), MsfChange::Inserted);
        assert_eq!(g.insert_edge(v(1), v(2), 3.0).unwrap(), MsfChange::Inserted);
        // 0-2 with weight 1 closes a cycle and evicts the heaviest cycle edge (0-1, weight 5).
        assert_eq!(
            g.insert_edge(v(0), v(2), 1.0).unwrap(),
            MsfChange::Replaced {
                evicted: (v(0), v(1))
            }
        );
        assert!(!g.is_tree_edge(v(0), v(1)));
        assert!(g.is_tree_edge(v(0), v(2)));
        // A heavy edge on a cycle stays non-tree.
        assert_eq!(
            g.insert_edge(v(1), v(0), 100.0),
            Err(DynSldError::EdgeAlreadyExists(v(1), v(0)))
        );
        assert_eq!(g.insert_edge(v(2), v(3), 2.0).unwrap(), MsfChange::Inserted);
        assert_eq!(
            g.insert_edge(v(1), v(3), 50.0).unwrap(),
            MsfChange::StoredNonTree
        );
        assert_eq!(g.num_graph_edges(), 5);
        assert_eq!(g.num_tree_edges(), 3);
    }

    #[test]
    fn delete_promotes_replacement_edges() {
        let mut g = DynamicGraphClustering::new(4);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(2), 2.0).unwrap();
        g.insert_edge(v(2), v(3), 3.0).unwrap();
        g.insert_edge(v(0), v(3), 10.0).unwrap(); // non-tree reserve
        assert_eq!(
            g.delete_edge(v(1), v(2)).unwrap(),
            MsfChange::RemovedWithReplacement {
                promoted: (v(0), v(3))
            }
        );
        assert!(g.is_tree_edge(v(0), v(3)));
        // Deleting a non-tree edge leaves the MSF untouched.
        g.insert_edge(v(1), v(2), 20.0).unwrap();
        assert_eq!(
            g.delete_edge(v(1), v(2)).unwrap(),
            MsfChange::RemovedNonTree
        );
        // Deleting with no replacement splits the graph.
        assert_eq!(
            g.delete_edge(v(0), v(1)).unwrap(),
            MsfChange::RemovedAndSplit
        );
        assert!(!g.sld().connected(v(0), v(1)));
    }

    #[test]
    fn errors_are_reported() {
        let mut g = DynamicGraphClustering::new(3);
        assert_eq!(
            g.insert_edge(v(0), v(0), 1.0),
            Err(DynSldError::SelfLoop(v(0)))
        );
        assert_eq!(
            g.insert_edge(v(0), v(5), 1.0),
            Err(DynSldError::VertexOutOfRange(v(5)))
        );
        assert_eq!(
            g.delete_edge(v(0), v(1)),
            Err(DynSldError::EdgeNotFound(v(0), v(1)))
        );
    }

    #[test]
    fn randomized_graph_churn_matches_kruskal_oracle() {
        let n = 40usize;
        let mut rng = SmallRng::seed_from_u64(42);
        // Candidate edge set: a few hundred random pairs with distinct weights.
        let mut candidates: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        let mut used = HashSet::new();
        while candidates.len() < 250 {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a == b || !used.insert(pair(v(a), v(b))) {
                continue;
            }
            candidates.push((v(a), v(b), candidates.len() as f64 + rng.gen::<f64>()));
        }
        candidates.shuffle(&mut rng);

        let mut g = DynamicGraphClustering::new(n);
        let mut alive: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        for step in 0..600 {
            let do_insert =
                alive.is_empty() || (alive.len() < candidates.len() && rng.gen_bool(0.55));
            if do_insert {
                // Insert a candidate that is not alive yet.
                let next = candidates
                    .iter()
                    .find(|c| !alive.iter().any(|a| pair(a.0, a.1) == pair(c.0, c.1)))
                    .copied()
                    .expect("candidate available");
                g.insert_edge(next.0, next.1, next.2).unwrap();
                alive.push(next);
            } else {
                let idx = rng.gen_range(0..alive.len());
                let (a, b, _) = alive.swap_remove(idx);
                g.delete_edge(a, b).unwrap();
            }
            if step % 10 == 0 {
                assert_msf_matches(&g, &alive);
            }
        }
        assert_msf_matches(&g, &alive);
    }

    #[test]
    fn update_weight_can_promote_and_demote() {
        let mut g = DynamicGraphClustering::new(3);
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(2), 2.0).unwrap();
        g.insert_edge(v(0), v(2), 5.0).unwrap(); // non-tree
        assert!(!g.is_tree_edge(v(0), v(2)));
        g.update_weight(v(0), v(2), 0.5).unwrap();
        assert!(g.is_tree_edge(v(0), v(2)));
        assert!(!g.is_tree_edge(v(1), v(2)));
        let alive = vec![(v(0), v(1), 1.0), (v(1), v(2), 2.0), (v(0), v(2), 0.5)];
        assert_msf_matches(&g, &alive);
    }

    #[test]
    fn threshold_queries_through_the_pipeline() {
        let mut g = DynamicGraphClustering::with_options(
            6,
            DynSldOptions {
                maintain_spine_index: true,
                ..Default::default()
            },
        );
        for (a, b, w) in [
            (0, 1, 1.0),
            (1, 2, 4.0),
            (2, 3, 2.0),
            (3, 4, 8.0),
            (4, 5, 3.0),
            (0, 2, 9.0), // non-tree
        ] {
            g.insert_edge(v(a), v(b), w).unwrap();
        }
        assert!(g.sld_mut().threshold_connected(v(0), v(2), 4.0));
        assert!(!g.sld_mut().threshold_connected(v(0), v(2), 3.0));
        assert_eq!(g.sld_mut().cluster_size(v(0), 4.5), 4);
        assert_eq!(g.sld_mut().cluster_size(v(5), 3.5), 2);
        // Deleting the weight-4 tree edge promotes the weight-9 reserve edge; the bottleneck
        // between 0 and 2 becomes 9.
        g.delete_edge(v(1), v(2)).unwrap();
        assert!(!g.sld_mut().threshold_connected(v(0), v(2), 4.0));
        assert!(g.sld_mut().threshold_connected(v(0), v(2), 9.0));
    }
}
