//! Holm–de Lichtenberg–Thorup-style level-structured replacement index — the
//! [`ForestBackend::Hdt`](dynsld::ForestBackend::Hdt) backend of
//! [`DynamicGraphClustering`](crate::DynamicGraphClustering).
//!
//! # Structure
//!
//! Every alive graph edge carries a **level** `ℓ(e) ∈ 0..≈log₂ n`. For each level `i` the
//! index keeps a dynamic forest `F_i` holding the tree (MSF) edges of level `≥ i` — so
//! `F_0` mirrors the MSF exactly and higher levels are nested sub-forests — plus per-vertex
//! incidence sets of the edges at *exactly* level `i` (tree and non-tree separately). The
//! forests are any [`DynamicForest`] + [`ComponentOps`] implementation (instantiated with
//! the [`EulerTourForest`] in production); this is where the `dynsld-dyntree` trait layer
//! is load-bearing.
//!
//! Invariants:
//!
//! 1. the component of `F_i` containing any vertex has at most `n / 2^i` vertices (so
//!    levels are bounded by `⌈log₂ n⌉`), and
//! 2. a **non-tree** edge at level `i ≥ 1` has both endpoints in the same component of
//!    `F_i` (level-0 non-tree edges are unconstrained).
//!
//! # Deletion search
//!
//! Deleting a tree edge `e` at level `ℓ` cuts it from `F_0..=F_ℓ` and then walks levels
//! `ℓ` down to `0`. At level `i` the smaller side of the split is identified, its level-`i`
//! tree edges are promoted to `i + 1` (they stay in `F_i` — promotion only adds them to
//! `F_{i+1}`), and its incident level-`i` non-tree edges are examined in increasing
//! `(weight, endpoint-pair)` order: an edge with both endpoints on the smaller side is
//! promoted to `i + 1` (invariant 2 holds because the side's tree edges were promoted
//! first); the first edge crossing the cut is recorded as the best replacement seen so far
//! and ends the level (every remaining candidate at this level is heavier).
//!
//! Unlike textbook HDT — which stops at the first crossing edge and relies on a global
//! weight invariant that a fully-dynamic edge flow (evictions re-entering at level 0)
//! would violate — the walk **continues to level 0**, early-terminating each level at the
//! first candidate that cannot beat the incumbent. This guarantees the replacement is the
//! *globally* minimum `(weight, pair)` crossing edge, i.e. bit-identical to the exhaustive
//! scan backend, while still amortizing candidate examinations over level promotions: a
//! non-crossing candidate is examined once per promotion, and invariant 1 bounds its
//! promotions by `⌈log₂ n⌉`. Continuing past an incumbent needs two deviations from the
//! textbook settle, both handled once the walk ends:
//!
//! - Promotions are *decided* during the walk but *applied* afterwards, and only at
//!   levels at or above the final discovery level `f` (deferral is behavior-neutral for
//!   the search: step `i` only ever writes level `i + 1` state, which the descending walk
//!   never reads again). The discarded ones would have grown exactly the forests the
//!   relink is about to re-join, merging more than the two halves there.
//! - The replacement keeps its discovery level `f` and is linked into `F_0..=F_f`: its
//!   endpoints provably straddle the split at every level `≤ f`, so the relink restores
//!   exactly the pre-deletion components (invariants 1 and 2 for everything skipped at
//!   those levels). Levels in `(f, ℓ]` stay split, and the walk's leftovers there —
//!   superseded incumbents and early-termination suffixes — may cross their level's
//!   split, so they are *demoted* to level `f`, where the relink just reconnected them.
//!   Demotion is the price of the global-minimum guarantee; it only touches candidates
//!   the search already paid to gather.

use crate::WorkCounters;
use dynsld_dyntree::{ComponentOps, DynamicForest, EulerTourForest, ExpandableForest};
use dynsld_forest::{ordered_pair as pair, EdgeId, VertexId, Weight};
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;

/// Per-edge record: current level, weight, tree membership, and the forest edge handle
/// (shared by every `F_i` the edge is linked into).
#[derive(Clone, Copy, Debug)]
struct EdgeRec {
    level: usize,
    weight: Weight,
    is_tree: bool,
    eid: EdgeId,
}

/// Per-vertex incidence sets of the edges at exactly one level.
type Incidence = HashMap<u32, HashSet<(VertexId, VertexId)>>;

/// The level-structured replacement index. Generic over the per-level forest
/// implementation; see the module docs.
#[derive(Clone, Debug)]
pub(crate) struct HdtIndex<F = EulerTourForest>
where
    F: DynamicForest<Node = VertexId, Edge = EdgeId> + ComponentOps + ExpandableForest,
{
    n: usize,
    /// `forests[i]` is `F_i`; allocated lazily as promotions reach new levels.
    forests: Vec<F>,
    /// Non-tree edges at exactly level `i`, per endpoint.
    nontree: Vec<Incidence>,
    /// Tree edges at exactly level `i`, per endpoint.
    tree: Vec<Incidence>,
    edges: HashMap<(VertexId, VertexId), EdgeRec>,
    free_eids: Vec<EdgeId>,
    next_eid: u32,
    counters: WorkCounters,
}

impl<F> HdtIndex<F>
where
    F: DynamicForest<Node = VertexId, Edge = EdgeId> + ComponentOps + ExpandableForest,
{
    pub(crate) fn new(n: usize) -> Self {
        let mut index = HdtIndex {
            n,
            forests: Vec::new(),
            nontree: Vec::new(),
            tree: Vec::new(),
            edges: HashMap::new(),
            free_eids: Vec::new(),
            next_eid: 0,
            counters: WorkCounters::default(),
        };
        index.ensure_level(0);
        index
    }

    pub(crate) fn add_vertices(&mut self, k: usize) {
        self.n += k;
        for forest in &mut self.forests {
            forest.add_nodes(k);
        }
    }

    /// Running work counters (drained by [`crate::DynamicGraphClustering`]).
    pub(crate) fn counters_mut(&mut self) -> &mut WorkCounters {
        &mut self.counters
    }

    /// Running work counters, read-only.
    pub(crate) fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    /// Highest admissible level: component sizes at level `i` are at least `2^i`, so
    /// promotions beyond `⌈log₂ n⌉` are pointless (and would be unbounded growth).
    fn level_cap(&self) -> usize {
        usize::BITS as usize - self.n.max(2).leading_zeros() as usize
    }

    fn ensure_level(&mut self, level: usize) {
        while self.forests.len() <= level {
            let seed = 0x4d7_0000 ^ self.forests.len() as u64;
            self.forests.push(F::with_nodes(self.n, seed));
            self.nontree.push(Incidence::new());
            self.tree.push(Incidence::new());
        }
    }

    fn alloc_eid(&mut self) -> EdgeId {
        self.free_eids.pop().unwrap_or_else(|| {
            let id = EdgeId(self.next_eid);
            self.next_eid += 1;
            id
        })
    }

    fn incidence_insert(map: &mut Incidence, key: (VertexId, VertexId)) {
        map.entry(key.0 .0).or_default().insert(key);
        map.entry(key.1 .0).or_default().insert(key);
    }

    fn incidence_remove(map: &mut Incidence, key: (VertexId, VertexId)) {
        for x in [key.0 .0, key.1 .0] {
            if let Some(set) = map.get_mut(&x) {
                set.remove(&key);
                if set.is_empty() {
                    map.remove(&x);
                }
            }
        }
    }

    /// Registers a new non-tree edge (enters at level 0).
    pub(crate) fn add_nontree(&mut self, u: VertexId, v: VertexId, weight: Weight) {
        let key = pair(u, v);
        let eid = self.alloc_eid();
        let prev = self.edges.insert(
            key,
            EdgeRec {
                level: 0,
                weight,
                is_tree: false,
                eid,
            },
        );
        debug_assert!(prev.is_none(), "edge registered twice");
        Self::incidence_insert(&mut self.nontree[0], key);
    }

    /// Unregisters a non-tree edge (graph deletion of a reserve edge).
    pub(crate) fn remove_nontree(&mut self, u: VertexId, v: VertexId) {
        let key = pair(u, v);
        let rec = self.edges.remove(&key).expect("non-tree edge registered");
        debug_assert!(!rec.is_tree);
        Self::incidence_remove(&mut self.nontree[rec.level], key);
        self.free_eids.push(rec.eid);
    }

    /// Registers a new tree edge (enters at level 0, linked into `F_0`).
    pub(crate) fn add_tree(&mut self, u: VertexId, v: VertexId, weight: Weight) {
        let key = pair(u, v);
        let eid = self.alloc_eid();
        let prev = self.edges.insert(
            key,
            EdgeRec {
                level: 0,
                weight,
                is_tree: true,
                eid,
            },
        );
        debug_assert!(prev.is_none(), "edge registered twice");
        self.forests[0].link(key.0, key.1, eid);
        Self::incidence_insert(&mut self.tree[0], key);
    }

    /// Deletes the tree edge `{u, v}` and runs the level-structured replacement search.
    ///
    /// This is also the insertion-eviction mirror: an eviction is replayed as
    /// `add_nontree(new edge)` followed by this search on the evicted edge, which provably
    /// returns the new edge (it is the unique sub-maximal edge on the cycle it closed) and
    /// in doing so repairs every level the eviction split — cutting the evicted edge
    /// without the search would strand higher-level non-tree edges across split
    /// components, violating invariant 2.
    ///
    /// Returns the minimum-`(weight, pair)` non-tree edge reconnecting the cut, already
    /// converted to a tree edge inside the index (at the deleted edge's level), or `None`
    /// if the cut has no replacement. See the module docs for the algorithm.
    pub(crate) fn delete_tree_with_search(
        &mut self,
        u: VertexId,
        v: VertexId,
    ) -> Option<(VertexId, VertexId, Weight)> {
        let key = pair(u, v);
        let rec = self.edges.remove(&key).expect("tree edge registered");
        debug_assert!(rec.is_tree);
        for i in 0..=rec.level {
            self.forests[i].cut(key.0, key.1, rec.eid);
        }
        Self::incidence_remove(&mut self.tree[rec.level], key);
        self.free_eids.push(rec.eid);

        self.counters.replacement_searches += 1;
        let cap = self.level_cap();
        let mut best: Option<(Weight, (VertexId, VertexId))> = None;
        // Discovery level of `best` (only meaningful while `best` is `Some`).
        let mut found = 0usize;
        // Candidates left behind at a level whose split the relink will not re-join; see
        // the demotion pass at the end.
        let mut stranded: Vec<(VertexId, VertexId)> = Vec::new();
        // Promotions *decided* during the walk, applied only once the discovery level is
        // known. Deferral is behavior-neutral for the search itself — promotions at step
        // `i` only ever touch `F_{i+1}` / `nontree[i+1]`, which the descending walk never
        // reads again — but it lets the settle phase discard the promotions decided below
        // the discovery level, whose target levels the relink is about to re-join (an
        // eagerly grown `F_j` there would make the relink merge more than the two halves,
        // breaking invariant 1).
        let mut tree_promos: Vec<(usize, Vec<(VertexId, VertexId)>)> = Vec::new();
        let mut nontree_promos: Vec<(usize, (VertexId, VertexId))> = Vec::new();
        for i in (0..=rec.level).rev() {
            // Smaller side of the level-i split (ties resolved towards `u`, matching the
            // scan backend's choice; the side only affects which candidates are promoted,
            // never which replacement is found).
            let side = if self.forests[i].component_size(u) <= self.forests[i].component_size(v) {
                u
            } else {
                v
            };
            let members = self.forests[i].component_vertices(side);

            // The smaller side's level-i tree edges can rise to i + 1: the side's size is
            // at most half its pre-deletion component's, so invariant 1 survives at i + 1.
            if i < cap {
                let mut rising: Vec<(VertexId, VertexId)> = Vec::new();
                for &m in &members {
                    if let Some(set) = self.tree[i].get(&m.0) {
                        rising.extend(set.iter().copied());
                    }
                }
                rising.sort_unstable();
                rising.dedup();
                if !rising.is_empty() {
                    tree_promos.push((i, rising));
                }
            }

            // Examine the smaller side's level-i non-tree candidates in rank order.
            let mut candidates: Vec<(Weight, (VertexId, VertexId))> = Vec::new();
            for &m in &members {
                if let Some(set) = self.nontree[i].get(&m.0) {
                    for &ckey in set {
                        candidates.push((self.edges[&ckey].weight, ckey));
                    }
                }
            }
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            candidates.dedup_by_key(|c| c.1);
            let mut k = 0;
            while k < candidates.len() {
                let (w, ckey) = candidates[k];
                if let Some((bw, bkey)) = best {
                    let beats = match w.total_cmp(&bw) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => ckey < bkey,
                        std::cmp::Ordering::Greater => false,
                    };
                    if !beats {
                        break; // the rest of this level is heavier still
                    }
                }
                // Only candidates that reach the crossing test count as scanned — the
                // rank-order early break above is exactly the work the level structure
                // saves over the scan backend's exhaustive incidence sweep.
                self.counters.replacement_edges_scanned += 1;
                let a_in = self.forests[i].connected(ckey.0, side);
                let b_in = self.forests[i].connected(ckey.1, side);
                debug_assert!(a_in || b_in, "candidate gathered from the smaller side");
                if a_in != b_in {
                    // Crossing: new incumbent; later candidates at this level are heavier.
                    // A superseded incumbent stays stranded across its level's split and
                    // must be demoted once the walk settles (see below).
                    if let Some((_, old_key)) = best.replace((w, ckey)) {
                        stranded.push(old_key);
                    }
                    found = i;
                    k += 1;
                    break;
                }
                // Non-crossing: both endpoints sit on the smaller side, so the edge can
                // rise a level (invariant 2 at i + 1 via the side's rising tree edges).
                if i < cap {
                    nontree_promos.push((i, ckey));
                }
                k += 1;
            }
            // Candidates past the stopping point were neither promoted nor chosen. The
            // ones that cross their level's split would be stranded once the walk moves
            // on (their level is only re-joined if the replacement lands at or above it);
            // remember them all — demotion below is a no-op for the safe ones' levels.
            stranded.extend(candidates[k..].iter().map(|&(_, ckey)| ckey));
        }

        // Settle. Apply the promotions decided at levels `>= found` — their target levels
        // stay split, and the promoted side is a fresh component small enough for
        // invariant 1. Promotions decided below the discovery level are discarded: the
        // relink re-joins those levels wholesale, so the candidates there are fine where
        // they are, and growing a to-be-rejoined `F_j` would break invariant 1. With no
        // replacement at all every level stays split and every promotion applies.
        let cutoff = if best.is_some() { found } else { 0 };
        for (i, rising) in tree_promos {
            if i < cutoff {
                continue;
            }
            self.ensure_level(i + 1);
            for tkey in rising {
                let trec = self.edges.get_mut(&tkey).expect("tree edge registered");
                trec.level = i + 1;
                let eid = trec.eid;
                Self::incidence_remove(&mut self.tree[i], tkey);
                Self::incidence_insert(&mut self.tree[i + 1], tkey);
                self.forests[i + 1].link(tkey.0, tkey.1, eid);
            }
        }
        for (i, ckey) in nontree_promos {
            if i < cutoff {
                continue;
            }
            self.ensure_level(i + 1);
            let crec = self.edges.get_mut(&ckey).expect("candidate registered");
            crec.level = i + 1;
            Self::incidence_remove(&mut self.nontree[i], ckey);
            Self::incidence_insert(&mut self.nontree[i + 1], ckey);
            self.counters.level_promotions += 1;
        }

        // Promote the replacement to a tree edge at its *discovery* level: both its
        // endpoints provably lie in the two halves of every level-`i <= found` split, so
        // linking it into `F_0..=F_found` re-joins exactly those halves — restoring the
        // pre-deletion components (invariant 1) and reconnecting every candidate skipped
        // at levels `<= found` (invariant 2). Linking any higher — e.g. at the deleted
        // edge's level — would merge the *wrong* components at levels above the discovery
        // level, where the replacement's endpoints need not straddle the split.
        let (w, rkey) = best?;
        let rrec = self.edges.get_mut(&rkey).expect("replacement registered");
        debug_assert_eq!(rrec.level, found);
        rrec.is_tree = true;
        let eid = rrec.eid;
        Self::incidence_remove(&mut self.nontree[found], rkey);
        Self::incidence_insert(&mut self.tree[found], rkey);
        for i in 0..=found {
            self.forests[i].link(rkey.0, rkey.1, eid);
        }
        // Levels above the discovery level stay split; stranded candidates there (the
        // superseded incumbents and the skipped suffixes) may cross their split, so they
        // are demoted to the discovery level. That is the highest sound level: a level-`j`
        // candidate had both endpoints in the level-`j` component pre-deletion, which is a
        // subset of the level-`found` component the relink just restored.
        for ckey in stranded {
            let crec = self
                .edges
                .get_mut(&ckey)
                .expect("stranded candidate registered");
            debug_assert!(!crec.is_tree);
            if crec.level > found {
                let from = crec.level;
                crec.level = found;
                Self::incidence_remove(&mut self.nontree[from], ckey);
                Self::incidence_insert(&mut self.nontree[found], ckey);
            }
        }
        Some((rkey.0, rkey.1, w))
    }

    /// Validates the structural invariants (test support): `F_0` matches the given tree
    /// edge set, every edge is registered at exactly one level's incidence sets, tree
    /// edges of level `ℓ` are connected in every `F_i` with `i <= ℓ`, and non-tree edges
    /// of level `ℓ >= 1` have `F_ℓ`-connected endpoints.
    #[cfg(test)]
    pub(crate) fn check_invariants(&mut self, tree_edges: &[(VertexId, VertexId)]) {
        let mut expected: Vec<_> = tree_edges.iter().map(|&(a, b)| pair(a, b)).collect();
        expected.sort_unstable();
        let mut actual: Vec<_> = self
            .edges
            .iter()
            .filter(|(_, r)| r.is_tree)
            .map(|(&k, _)| k)
            .collect();
        actual.sort_unstable();
        assert_eq!(actual, expected, "tree edge set mismatch");
        let recs: Vec<((VertexId, VertexId), EdgeRec)> =
            self.edges.iter().map(|(&k, &r)| (k, r)).collect();
        for (key, rec) in recs {
            let set = if rec.is_tree {
                &self.tree[rec.level]
            } else {
                &self.nontree[rec.level]
            };
            assert!(
                set.get(&key.0 .0).is_some_and(|s| s.contains(&key))
                    && set.get(&key.1 .0).is_some_and(|s| s.contains(&key)),
                "incidence sets out of sync for {key:?}"
            );
            if rec.is_tree {
                for i in 0..=rec.level {
                    assert!(
                        self.forests[i].connected(key.0, key.1),
                        "tree edge {key:?} missing from F_{i}"
                    );
                }
                // Invariant 1: the F_i component of a level->=i tree edge holds at most
                // n / 2^i vertices.
                for i in 1..=rec.level {
                    assert!(
                        self.forests[i].component_size(key.0) <= self.n >> i,
                        "level-{i} component exceeds n / 2^{i}"
                    );
                }
            } else if rec.level >= 1 {
                assert!(
                    self.forests[rec.level].connected(key.0, key.1),
                    "non-tree edge {key:?} violates the level invariant"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicGraphClustering, MsfChange, ReplacementIndex};
    use dynsld::{DynSldOptions, ForestBackend};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn hdt_graph(n: usize) -> DynamicGraphClustering {
        DynamicGraphClustering::with_options(
            n,
            DynSldOptions {
                msf_backend: ForestBackend::Hdt,
                ..Default::default()
            },
        )
    }

    fn check(g: &mut DynamicGraphClustering) {
        let tree: Vec<(VertexId, VertexId)> = g
            .graph_edges()
            .into_iter()
            .filter(|&(_, _, _, t)| t)
            .map(|(a, b, _, _)| (a, b))
            .collect();
        let ReplacementIndex::Hdt(ix) = &mut g.index else {
            panic!("hdt backend expected");
        };
        ix.check_invariants(&tree);
    }

    #[test]
    fn randomized_churn_maintains_level_invariants() {
        let n = 24usize;
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut g = hdt_graph(n);
        let mut alive: Vec<(VertexId, VertexId)> = Vec::new();
        for step in 0..500 {
            if alive.is_empty() || rng.gen_bool(0.55) {
                let a = v(rng.gen_range(0..n as u32));
                let b = v(rng.gen_range(0..n as u32));
                if a == b || alive.contains(&pair(a, b)) {
                    continue;
                }
                // Coarse weights force evictions and tie-breaks through the eviction replay.
                let w = rng.gen_range(0..10) as f64;
                g.insert_edge(a, b, w).unwrap();
                alive.push(pair(a, b));
            } else {
                let (a, b) = alive.swap_remove(rng.gen_range(0..alive.len()));
                g.delete_edge(a, b).unwrap();
            }
            if step % 7 == 0 {
                check(&mut g);
            }
        }
        check(&mut g);
        let counters = g.work_counters();
        assert!(counters.replacement_searches > 0);
        assert!(counters.replacement_edges_scanned > 0);
    }

    #[test]
    fn deletion_search_promotes_non_crossing_candidates() {
        // Two path halves joined by a bridge; the left half carries two internal reserve
        // edges cheaper than the only crossing reserve edge. Deleting the bridge must walk
        // past (and promote) the internal candidates before settling on the crossing one.
        let mut g = hdt_graph(8);
        for (a, b, w) in [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 3.0),
            (4, 5, 4.0),
            (5, 6, 5.0),
            (6, 7, 6.0),
            (3, 4, 10.0), // bridge
        ] {
            g.insert_edge(v(a), v(b), w).unwrap();
        }
        g.insert_edge(v(0), v(2), 7.0).unwrap(); // internal to the left half
        g.insert_edge(v(1), v(3), 8.0).unwrap(); // internal to the left half
        g.insert_edge(v(0), v(7), 20.0).unwrap(); // the only crossing reserve edge
        g.take_work_counters();
        assert_eq!(
            g.delete_edge(v(3), v(4)).unwrap(),
            MsfChange::RemovedWithReplacement {
                promoted: (v(0), v(7))
            }
        );
        let counters = g.take_work_counters();
        assert_eq!(counters.replacement_searches, 1);
        assert_eq!(
            counters.level_promotions, 2,
            "both internal candidates rise a level"
        );
        check(&mut g);
        // The promoted candidates are now stored at level 1; a repeat deletion of the same
        // cut (the promoted crossing edge) must not re-examine them at level 0.
        assert_eq!(
            g.delete_edge(v(0), v(7)).unwrap(),
            MsfChange::RemovedAndSplit
        );
        check(&mut g);
    }

    #[test]
    fn batch_deletes_keep_the_level_structure_consistent() {
        let n = 16usize;
        let mut g = hdt_graph(n);
        let mut edges = Vec::new();
        // Dense-ish ring-with-chords graph: plenty of reserve edges to promote.
        for i in 0..n as u32 {
            edges.push((v(i), v((i + 1) % n as u32), i as f64 + 1.0));
        }
        for i in 0..n as u32 / 2 {
            edges.push((v(i), v(i + n as u32 / 2), 50.0 + i as f64));
        }
        g.batch_insert_edges(&edges).unwrap();
        check(&mut g);
        // Delete a mixed batch: some tree edges, some reserve edges.
        let batch: Vec<(VertexId, VertexId)> =
            edges.iter().step_by(3).map(|&(a, b, _)| (a, b)).collect();
        g.batch_delete_edges(&batch).unwrap();
        check(&mut g);
    }

    /// Regression: generated insert/delete/reweight churn with per-op invariant checks.
    /// This is the workload shape that exposed two settle-phase bugs in the continuing
    /// walk — relinking the replacement at the deleted edge's level instead of its
    /// discovery level, and applying promotions decided below the discovery level — both
    /// of which corrupt the level structure only after long streams (the damage surfaces
    /// dozens of operations later as an oversized component or a phantom "crossing" edge
    /// that makes a level forest link cycle).
    #[test]
    fn generated_churn_with_reweights_keeps_every_level_invariant() {
        use dynsld_forest::workload::{GraphUpdate, GraphWorkloadBuilder};
        for seed in 0..6u64 {
            for n in [4usize, 10, 34] {
                let stream =
                    GraphWorkloadBuilder::new(n)
                        .weight_scale(4.0)
                        .churn_stream(2 * n, 300, seed);
                let mut g = hdt_graph(n);
                for (i, &update) in stream.iter().enumerate() {
                    let result = match update {
                        GraphUpdate::Insert { u, v, weight } => g.insert_edge(u, v, weight),
                        GraphUpdate::Delete { u, v } => g.delete_edge(u, v),
                        GraphUpdate::Reweight { u, v, weight } => g.update_weight(u, v, weight),
                    };
                    result.unwrap_or_else(|e| {
                        panic!("seed={seed} n={n} op#{i} {update:?} rejected: {e:?}")
                    });
                    check(&mut g);
                }
            }
        }
    }
}
