//! Shared helpers for the DynSLD benchmark harness.
//!
//! Every benchmark target in `benches/` regenerates one table / theorem / section of the paper
//! (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded results). The
//! helpers here keep the measurement configuration consistent and small enough that
//! `cargo bench --workspace` completes in minutes while still exposing the asymptotic *shapes*
//! the paper claims.

use criterion::Criterion;
use std::time::Duration;

/// The measurement configuration used by every benchmark group: few samples, short measurement
/// windows. The goal is shape (who wins, how costs grow), not microsecond precision.
pub fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500))
        .configure_from_args()
}

/// The default problem sizes used by `n`-sweeps. Kept modest so the whole suite runs quickly;
/// pass `--bench <name> -- --sample-size ...` or edit these constants for larger runs.
pub const N_SWEEP: &[usize] = &[10_000, 40_000];

/// Dendrogram-height sweep used by the Theorem 1.1/1.3 benchmarks (at fixed n).
pub const H_SWEEP: &[usize] = &[16, 256, 4_096, 40_000];

/// Batch-size sweep used by the Theorem 1.5 benchmark.
pub const K_SWEEP: &[usize] = &[1, 16, 128, 1_024];

/// Structural-change sweep used by the output-sensitivity benchmarks (c ≈ 2·h of the
/// Theorem 5.1 instance).
pub const C_SWEEP: &[usize] = &[4, 64, 1_024, 16_384];
