//! **Theorem 1.3** — parallel insertions/deletions.
//!
//! The parallel update algorithms replace the sequential spine walk by parallel merge / filter
//! primitives. The interesting regime is large h (long spines): the parallel algorithms should
//! track the sequential ones for small h (no parallelism to exploit, small constant overhead)
//! and catch up / win as h grows. Thread scaling is governed by the workspace's vendored
//! work-stealing pool, sized via `DYNSLD_THREADS` (1 = sequential fallback).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::{DynSld, DynSldOptions, UpdateStrategy};
use dynsld_bench::{config, H_SWEEP};
use dynsld_forest::gen;

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let n = 50_000;
    let mut group = c.benchmark_group("thm1.3/parallel_update_vs_h");
    for &h in H_SWEEP {
        let h = h.min(n - 2);
        let inst = gen::path_with_height(n, h);
        // The minimum-weight edge sits at the bottom of the dendrogram: its spine has length ≈ h.
        let (u, v, w) = *inst
            .edges
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("weights are not NaN"))
            .expect("non-empty");
        let mut seq = DynSld::from_forest(inst.build_forest(), DynSldOptions::default());
        let mut par = DynSld::from_forest(
            inst.build_forest(),
            DynSldOptions::with_strategy(UpdateStrategy::Parallel),
        );
        group.bench_with_input(BenchmarkId::new("sequential", h), &h, |b, _| {
            b.iter(|| {
                seq.delete(u, v).expect("present");
                seq.insert(u, v, w).expect("acyclic");
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", h), &h, |b, _| {
            b.iter(|| {
                par.delete(u, v).expect("present");
                par.insert(u, v, w).expect("acyclic");
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parallel_vs_sequential
}
criterion_main!(benches);
