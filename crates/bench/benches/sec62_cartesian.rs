//! **Section 6.2** — dynamic Cartesian trees.
//!
//! Leaf updates (append / pop) must cost worst-case `O(log n)` independent of the sequence
//! length and of the tree height — compared against rebuilding the Cartesian tree from scratch
//! with the static `O(n)` construction, and against arbitrary-position updates (three forest
//! updates each).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::cartesian::{static_parent_array, CartesianTree};
use dynsld_bench::config;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_cartesian(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec6.2/cartesian");
    for &n in &[4_096usize, 65_536] {
        let mut rng = SmallRng::seed_from_u64(9);
        // Monotone values: the Cartesian tree is a chain (worst-case height), which is exactly
        // where amortized rebuilding approaches struggle and O(log n) worst-case leaf updates
        // shine.
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut tree = CartesianTree::from_values(&values);
        group.bench_with_input(BenchmarkId::new("leaf_append_pop", n), &n, |b, _| {
            b.iter(|| {
                tree.push_back(n as f64 + 1.0);
                tree.pop_back();
            })
        });
        group.bench_with_input(BenchmarkId::new("middle_insert_remove", n), &n, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(1..tree.len() - 1);
                tree.insert_at(i, 0.5 + rng.gen::<f64>() * 0.4);
                tree.remove_at(i);
            })
        });
        group.bench_with_input(BenchmarkId::new("static_rebuild", n), &n, |b, _| {
            b.iter(|| static_parent_array(tree.values()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cartesian
}
criterion_main!(benches);
