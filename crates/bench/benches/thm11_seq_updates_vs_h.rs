//! **Theorem 1.1** — sequential insertion `O(h)` and deletion `O(h log(1 + n/h))`.
//!
//! At fixed n, the per-update cost must grow (roughly linearly) with the dendrogram height h,
//! and stay below the cost of static recomputation (`Θ(n log h)`) for every h. The height is
//! controlled with `gen::path_with_height`; the measured update is a delete + re-insert of an
//! edge whose spine has length ≈ h.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::{static_sld_kruskal, DynSld, DynSldOptions};
use dynsld_bench::{config, H_SWEEP};
use dynsld_forest::gen;
use dynsld_forest::VertexId;

fn bench_updates_vs_height(c: &mut Criterion) {
    let n = 50_000;
    let mut group = c.benchmark_group("thm1.1/seq_update_vs_h");
    for &h in H_SWEEP {
        let h = h.min(n - 2);
        let inst = gen::path_with_height(n, h);
        let mut sld = DynSld::from_forest(inst.build_forest(), DynSldOptions::default());
        // The minimum-weight edge sits at the bottom of the dendrogram: its spine has length ≈ h.
        let (u, v, w) = *inst
            .edges
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("weights are not NaN"))
            .expect("non-empty");
        group.bench_with_input(BenchmarkId::new("delete_insert", h), &h, |b, _| {
            b.iter(|| {
                sld.delete(u, v).expect("edge present");
                sld.insert(u, v, w).expect("acyclic");
            })
        });
        group.bench_with_input(BenchmarkId::new("static_recompute", h), &h, |b, _| {
            b.iter(|| static_sld_kruskal(sld.forest()))
        });
    }
    group.finish();
}

fn bench_updates_vs_n(c: &mut Criterion) {
    // Fixed low height (h ≈ log n): updates should be essentially independent of n while
    // static recomputation grows linearly.
    let mut group = c.benchmark_group("thm1.1/seq_update_low_h_vs_n");
    for &n in &[10_000usize, 40_000, 160_000] {
        let inst = gen::path(n, gen::WeightOrder::Balanced);
        let mut sld = DynSld::from_forest(inst.build_forest(), DynSldOptions::default());
        let mid = n / 2;
        let (u, v, w) = inst.edges[mid];
        group.bench_with_input(BenchmarkId::new("delete_insert", n), &n, |b, _| {
            b.iter(|| {
                sld.delete(u, v).expect("edge present");
                sld.insert(u, v, w).expect("acyclic");
            })
        });
        group.bench_with_input(BenchmarkId::new("static_recompute", n), &n, |b, _| {
            b.iter(|| static_sld_kruskal(sld.forest()))
        });
        let _ = VertexId(0);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_updates_vs_height, bench_updates_vs_n
}
criterion_main!(benches);
