//! Durability overhead and recovery cost (PR 10): ingest throughput with the WAL off vs
//! on (per-drain and per-record fsync), plus, in the `quality` array, the headline
//! acceptance numbers — the WAL-on `Fsync::EveryDrain` ingest overhead in percent, the
//! journal's bytes-per-event footprint, and wall-clock recovery time for a WAL-only
//! replay vs a checkpoint-anchored restore of the same stream.

use criterion::{
    black_box, criterion_group, criterion_main, record_quality, BenchmarkId, Criterion,
};
use dynsld_bench::config;
use dynsld_engine::{FlushPolicy, FlusherDriver, FsyncPolicy, ServiceBuilder};
use dynsld_forest::workload::{GraphUpdate, GraphWorkloadBuilder};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const N: usize = 1_024;
const SHARDS: usize = 4;

fn stream() -> Vec<GraphUpdate> {
    GraphWorkloadBuilder::new(N)
        .weight_scale(16.0)
        .churn_stream(2 * N, 4 * N, 0xD04A)
}

fn fresh_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dynsld-bench-durable-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One full pipeline pass: chunked submit → drain → flush, with or without a journal.
/// Checkpointing is disabled (`u64::MAX` cadence) so the durable runs isolate pure WAL
/// cost; `bench_recovery` measures checkpoints separately.
fn run(stream: &[GraphUpdate], durable: Option<(&Path, FsyncPolicy)>) -> usize {
    let mut builder = ServiceBuilder::new()
        .vertices(N)
        .shards(SHARDS)
        .flush_policy(FlushPolicy::EveryNOps(64));
    if let Some((dir, fsync)) = durable {
        builder = builder
            .durable(dir)
            .fsync(fsync)
            .checkpoint_every_records(u64::MAX);
    }
    let service = builder.build().expect("valid configuration");
    let ingest = service.ingest_handle();
    let mut driver = FlusherDriver::new(service);
    for chunk in stream.chunks(256) {
        ingest
            .submit_all(chunk.iter().copied())
            .expect("queue open");
        driver.pump().expect("valid stream");
    }
    driver.flush().expect("flush");
    driver.service().published().num_graph_edges()
}

/// Best-of-`reps` wall time for one configuration, in nanoseconds.
fn best_of(stream: &[GraphUpdate], reps: usize, fsync: Option<FsyncPolicy>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let dir = fsync.map(|_| fresh_dir());
        let started = Instant::now();
        black_box(run(stream, dir.as_deref().zip(fsync)));
        best = best.min(started.elapsed().as_nanos() as f64);
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    best
}

fn bench_ingest(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("durability/ingest");
    group.bench_with_input(
        BenchmarkId::new("wal_off", stream.len()),
        &stream,
        |b, s| b.iter(|| black_box(run(s, None))),
    );
    for (label, fsync) in [
        ("wal_every_drain", FsyncPolicy::EveryDrain),
        ("wal_every_record", FsyncPolicy::EveryRecord),
        ("wal_os", FsyncPolicy::Os),
    ] {
        group.bench_with_input(BenchmarkId::new(label, stream.len()), &stream, |b, s| {
            b.iter(|| {
                let dir = fresh_dir();
                let edges = black_box(run(s, Some((&dir, fsync))));
                let _ = std::fs::remove_dir_all(&dir);
                edges
            })
        });
    }
    group.finish();

    // The acceptance number: per-drain-fsync WAL overhead over the WAL-off baseline,
    // best-of-3 so allocator and page-cache noise doesn't inflate the ratio.
    let base = best_of(&stream, 3, None);
    let drain = best_of(&stream, 3, Some(FsyncPolicy::EveryDrain));
    let record = best_of(&stream, 3, Some(FsyncPolicy::EveryRecord));
    record_quality(
        "durability/ingest/overhead",
        &[
            ("wal_every_drain_overhead_pct", (drain / base - 1.0) * 100.0),
            (
                "wal_every_record_overhead_pct",
                (record / base - 1.0) * 100.0,
            ),
        ],
    );

    // Journal footprint: bytes the WAL writes per ingested event.
    let dir = fresh_dir();
    {
        let service = ServiceBuilder::new()
            .vertices(N)
            .shards(SHARDS)
            .flush_policy(FlushPolicy::EveryNOps(64))
            .durable(&dir)
            .checkpoint_every_records(u64::MAX)
            .build()
            .expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = FlusherDriver::new(service);
        // Chunked: the stream outnumbers the queue slots and nothing drains concurrently.
        for chunk in stream.chunks(256) {
            ingest
                .submit_all(chunk.iter().copied())
                .expect("queue open");
            driver.pump().expect("valid stream");
        }
        driver.flush().expect("flush");
        let m = driver.service().metrics();
        record_quality(
            "durability/ingest/footprint",
            &[
                (
                    "wal_bytes_per_event",
                    m.wal_bytes_written as f64 / m.wal_records_appended.max(1) as f64,
                ),
                ("wal_records_appended", m.wal_records_appended as f64),
            ],
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_recovery(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("durability/recovery");

    // Two artifact layouts for the same stream: a bare WAL (full replay) and a
    // checkpoint-anchored directory (restore + empty tail).
    let seed = |checkpoint: bool| -> PathBuf {
        let dir = fresh_dir();
        let service = ServiceBuilder::new()
            .vertices(N)
            .shards(SHARDS)
            .flush_policy(FlushPolicy::EveryNOps(64))
            .durable(&dir)
            .checkpoint_every_records(u64::MAX)
            .build()
            .expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = FlusherDriver::new(service);
        for chunk in stream.chunks(256) {
            ingest
                .submit_all(chunk.iter().copied())
                .expect("queue open");
            driver.pump().expect("valid stream");
        }
        driver.flush().expect("flush");
        if checkpoint {
            assert!(
                driver.checkpoint().expect("checkpoint"),
                "quiescent + dirty"
            );
        }
        dir
    };
    let recover = |dir: &Path| -> u64 {
        let service = ServiceBuilder::new()
            .vertices(N)
            .shards(SHARDS)
            .flush_policy(FlushPolicy::EveryNOps(64))
            .durable(dir)
            .build()
            .expect("valid configuration");
        let report = service.durability().expect("durable");
        assert!(report.recovered);
        report.records_durable
    };

    for (label, checkpoint) in [("wal_replay", false), ("from_checkpoint", true)] {
        let dir = seed(checkpoint);
        group.bench_with_input(BenchmarkId::new(label, stream.len()), &dir, |b, d| {
            b.iter(|| black_box(recover(d)))
        });
        let started = Instant::now();
        let records = recover(&dir);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        record_quality(
            format!("durability/recovery/{label}"),
            &[
                ("recovery_ms", elapsed_ms),
                ("records_recovered", records as f64),
            ],
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ingest, bench_recovery
}
criterion_main!(benches);
