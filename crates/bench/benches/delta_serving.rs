//! Delta serving: the republish cost after a *small* batch, and the wire bytes a subscriber
//! pays for it — the two acceptance numbers of the incremental-export work.
//!
//! Workload: a planted-community graph (`community_stream`, n = 4096, 64 hidden
//! communities) built to steady state, then churned with small batches of
//! `add_vertices(1)` + 8 re-weights of alive edges — the "a few things changed, republish"
//! regime the serving tier exists for.
//!
//! Two measurements, both persisted as `quality` records into the `--save-json` document
//! (the committed `BENCH_PR7.json`):
//!
//! * `delta_serving/republish` — `republish_ns` (incremental rank-sorted export via the
//!   dirty-set splice) vs `full_export_ns` (the full `O(m log m)` rebuild, which doubles as
//!   the bit-identity oracle), and their ratio `speedup`. Acceptance: speedup ≥ 5×.
//! * `delta_serving/payload` — `delta_bytes` (one small publish step encoded as a wire
//!   patch) vs `full_snapshot_bytes` (the same state as a full wire snapshot), and
//!   `delta_bytes_ratio`. Acceptance: ratio ≤ 0.10.
//! * `delta_serving/faults` — the six robustness counters after a scripted
//!   quarantine/recover round and a torn-write wire exchange, with the subscriber's
//!   client-side [`WireStats`](dynsld_serve::WireStats) folded in through
//!   `Metrics::merge`. Pins that the fault path actually fired, not just that it exists.

use criterion::{
    black_box, criterion_group, criterion_main, record_quality, BenchmarkId, Criterion,
};
use dynsld_engine::{
    FaultPlan, FlushPolicy, GreedyPartitioner, Metrics, ServiceBuilder, SyncResponse,
};
use dynsld_forest::workload::{GraphUpdate, GraphWorkloadBuilder};
use dynsld_forest::VertexId;
use dynsld_msf::DynamicGraphClustering;
use dynsld_serve::codec::{encode_patch, encode_snapshot};
use dynsld_serve::{DeltaServer, ServerOptions, WireConfig, WireSubscriber};
use dynsld_telemetry::Telemetry;
use std::time::{Duration, Instant};

const N: usize = 4_096;
const COMMUNITIES: usize = 64;
const NUM_OPS: usize = 32_768;
const REWEIGHTS_PER_BATCH: usize = 8;
const QUALITY_ITERS: u32 = 200;

fn community_updates() -> Vec<GraphUpdate> {
    GraphWorkloadBuilder::new(N)
        .weight_scale(8.0)
        .community_stream(COMMUNITIES, 0.10, 2 * N, NUM_OPS, 7)
        .updates
}

/// The edge pairs still alive after `updates` (insertion order, deletions removed).
fn alive_pairs(updates: &[GraphUpdate]) -> Vec<(VertexId, VertexId)> {
    let key = |u: VertexId, v: VertexId| if u.0 <= v.0 { (u, v) } else { (v, u) };
    let mut alive: Vec<(VertexId, VertexId)> = Vec::new();
    for &update in updates {
        match update {
            GraphUpdate::Insert { u, v, .. } => alive.push(key(u, v)),
            GraphUpdate::Delete { u, v } => {
                let k = key(u, v);
                let at = alive.iter().position(|&p| p == k).expect("valid stream");
                alive.swap_remove(at);
            }
            GraphUpdate::Reweight { .. } => {}
        }
    }
    alive
}

/// A clustering at steady state under the community workload.
fn seeded(updates: &[GraphUpdate]) -> DynamicGraphClustering {
    let mut clustering = DynamicGraphClustering::new(N);
    for &update in updates {
        match update {
            GraphUpdate::Insert { u, v, weight } => {
                clustering.insert_edge(u, v, weight).expect("valid stream");
            }
            GraphUpdate::Delete { u, v } => {
                clustering.delete_edge(u, v).expect("valid stream");
            }
            GraphUpdate::Reweight { u, v, weight } => {
                clustering
                    .update_weight(u, v, weight)
                    .expect("valid stream");
            }
        }
    }
    clustering
}

/// One small republish batch: a vertex joins, 8 existing edges re-weight. Deterministic
/// (seeded by `step`) and deletion-free, so `alive` stays valid across iterations.
fn small_batch(
    clustering: &mut DynamicGraphClustering,
    alive: &[(VertexId, VertexId)],
    step: usize,
) {
    clustering.add_vertices(1);
    for k in 0..REWEIGHTS_PER_BATCH {
        let (u, v) = alive[(step * 31 + k * 97) % alive.len()];
        let weight = 0.5 + ((step + k) % 13) as f64 * 0.61;
        clustering.update_weight(u, v, weight).expect("alive edge");
    }
}

fn bench_delta_serving(c: &mut Criterion) {
    let updates = community_updates();
    let alive = alive_pairs(&updates);
    assert!(alive.len() >= REWEIGHTS_PER_BATCH);

    // ---- Republish cost: incremental splice vs full rebuild, identical states. ----------
    // The quality loop times ONLY the exports (the batch application is outside both
    // timers) and cross-checks the splice against the full rebuild — the oracle — on the
    // same state every iteration.
    let mut clustering = seeded(&updates);
    let _ = clustering.export_snapshot_incremental(); // warm the export cache
    let (mut incremental_ns, mut full_ns) = (Duration::ZERO, Duration::ZERO);
    for step in 0..QUALITY_ITERS as usize {
        small_batch(&mut clustering, &alive, step);
        let started = Instant::now();
        let spliced = clustering.export_snapshot_incremental();
        incremental_ns += started.elapsed();
        let started = Instant::now();
        let rebuilt = clustering.sld().export_snapshot();
        full_ns += started.elapsed();
        assert_eq!(spliced, rebuilt, "splice diverged from the rebuild oracle");
        black_box(spliced.version);
    }
    let stats = clustering.sld().export_stats();
    assert_eq!(
        stats.incremental_splices,
        u64::from(QUALITY_ITERS),
        "every small batch must take the splice path"
    );
    let republish_ns = incremental_ns.as_nanos() as f64 / f64::from(QUALITY_ITERS);
    let full_export_ns = full_ns.as_nanos() as f64 / f64::from(QUALITY_ITERS);
    record_quality(
        "delta_serving/republish",
        &[
            ("republish_ns", republish_ns),
            ("full_export_ns", full_export_ns),
            ("speedup", full_export_ns / republish_ns),
            ("tree_edges", clustering.num_tree_edges() as f64),
            ("reweights_per_batch", REWEIGHTS_PER_BATCH as f64),
        ],
    );

    // Criterion entries for the same two paths (batch + export per iteration, so the shim's
    // numbers are self-contained; the quality scalars above are the clean export-only cost).
    let mut group = c.benchmark_group("delta_serving/republish");
    group.bench_with_input(BenchmarkId::new("incremental", N), &updates, |b, ups| {
        let mut clustering = seeded(ups);
        let _ = clustering.export_snapshot_incremental();
        let mut step = 0;
        b.iter(|| {
            small_batch(&mut clustering, &alive, step);
            step += 1;
            black_box(clustering.export_snapshot_incremental().version)
        })
    });
    group.bench_with_input(BenchmarkId::new("full_rebuild", N), &updates, |b, ups| {
        let mut clustering = seeded(ups);
        let mut step = 0;
        b.iter(|| {
            small_batch(&mut clustering, &alive, step);
            step += 1;
            black_box(clustering.sld().export_snapshot().version)
        })
    });
    group.finish();

    // ---- Wire payload: one small publish step as a patch vs the full snapshot. ----------
    let service = ServiceBuilder::new()
        .vertices(N)
        .shards(2)
        .stateful_partitioner(GreedyPartitioner::default())
        .flush_policy(FlushPolicy::Manual)
        .delta_ring(16)
        .build()
        .expect("valid configuration");
    let ingest = service.ingest_handle();
    let read = service.read_handle();
    let mut driver = service.into_driver();
    for chunk in updates.chunks(512) {
        for &update in chunk {
            ingest.submit(update).expect("valid stream");
        }
        driver.pump().expect("validated stream");
        driver.flush().expect("validated stream");
    }
    let r0 = read.revision();
    driver.add_vertices(1);
    for k in 0..REWEIGHTS_PER_BATCH {
        let (u, v) = alive[(k * 97) % alive.len()];
        let weight = 0.5 + (k % 13) as f64 * 0.61;
        ingest
            .submit(GraphUpdate::Reweight { u, v, weight })
            .expect("alive edge");
    }
    driver.pump().expect("validated stream");
    driver.flush().expect("validated stream");
    let SyncResponse::Delta(patch) = read.sync_from(Some(r0)) else {
        panic!("r0 is two publishes back with a 16-deep ring: a chain must exist");
    };
    let delta_bytes = encode_patch(&patch).len() as f64;
    let full_snapshot_bytes = encode_snapshot(&read.snapshot()).len() as f64;
    record_quality(
        "delta_serving/payload",
        &[
            ("delta_bytes", delta_bytes),
            ("full_snapshot_bytes", full_snapshot_bytes),
            ("delta_bytes_ratio", delta_bytes / full_snapshot_bytes),
            ("publish_steps_in_patch", patch.deltas.len() as f64),
        ],
    );

    // ---- Fault counters: a scripted quarantine/recover round plus a torn wire fetch. ----
    // A small service armed so shard 0's second flush panics at the torn checkpoint:
    // the shard quarantines, reads go stale-flagged, recovery replays the journal. The
    // wire leg then serves the recovered view through a server whose first connection is
    // torn 40 bytes in, forcing exactly one subscriber retry.
    let faulted = ServiceBuilder::new()
        .vertices(64)
        .shards(2)
        .flush_policy(FlushPolicy::Manual)
        .delta_ring(64)
        .faults(FaultPlan::parse("flush_panic=shard:0,flush:2;seed=7").expect("valid spec"))
        .build()
        .expect("valid configuration");
    let ingest = faulted.ingest_handle();
    let read = faulted.read_handle();
    let mut driver = faulted.into_driver();
    let churn = GraphWorkloadBuilder::new(64)
        .weight_scale(8.0)
        .churn_stream(128, 96, 11);
    for chunk in churn.chunks(16) {
        for &update in chunk {
            ingest.submit(update).expect("valid stream");
        }
        driver.pump().expect("validated stream");
        driver.flush().expect("flush isolates panics");
    }
    for shard in read.snapshot().stale_shards() {
        driver
            .recover_shard(shard)
            .expect("journal replay succeeds");
    }

    let server = DeltaServer::bind_with(
        "127.0.0.1:0",
        read.clone(),
        Telemetry::disabled(),
        ServerOptions {
            faults: FaultPlan::parse("torn_write=conn:1,after:40").expect("valid spec"),
            ..ServerOptions::default()
        },
    )
    .expect("bind on an ephemeral port");
    let mut subscriber = WireSubscriber::connect_with(
        server.local_addr(),
        WireConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(5),
            ..WireConfig::default()
        },
    )
    .expect("resolvable address");
    subscriber.sync().expect("retry absorbs the torn write");
    let stats = subscriber.stats();
    server.shutdown();

    // Client-side wire stats ride the same `Metrics::merge` path the shards use.
    let wire = Metrics {
        wire_retries: stats.retries,
        wire_timeouts: stats.timeouts,
        ..Metrics::default()
    };
    let merged = Metrics::merge(&[driver.service().metrics(), wire]);
    assert_eq!(
        merged.shards_quarantined, 1,
        "shard 0 must have quarantined"
    );
    assert_eq!(merged.shard_recoveries, 1, "and been recovered");
    assert!(
        merged.wire_retries >= 1,
        "the torn write must force a retry"
    );
    record_quality(
        "delta_serving/faults",
        &[
            ("shard_panics_caught", merged.shard_panics_caught as f64),
            ("shards_quarantined", merged.shards_quarantined as f64),
            ("shard_recoveries", merged.shard_recoveries as f64),
            ("wire_retries", merged.wire_retries as f64),
            ("wire_timeouts", merged.wire_timeouts as f64),
            ("stale_reads_served", merged.stale_reads_served as f64),
        ],
    );
}

criterion_group!(benches, bench_delta_serving);
criterion_main!(benches);
