//! Engine ingest throughput: coalesced batch application vs naive per-edge application.
//!
//! Workload: the sliding-window stream of `examples/streaming_clustering.rs`, lifted to graph
//! updates (`GraphWorkloadBuilder::sliding_window_stream`) — a fixed-size window of similarity
//! edges over a vertex set, each tick evicting the oldest edge and admitting a new one. This is
//! the regime the engine targets: between two flushes many events touch overlapping edges, so
//! coalescing plus the Theorem-1.5 batch fast paths should beat applying every event
//! individually. The `flush_every` parameter sweeps the ingest window from per-event flushing
//! (no coalescing possible) to large batches.

use criterion::{
    criterion_group, criterion_main, record_telemetry_json, BenchmarkId, Criterion, Throughput,
};
use dynsld_bench::config;
use dynsld_engine::{
    Backpressure, BlockPartitioner, ClusterService, ClusteringEngine, FlushPolicy, ServiceBuilder,
};
use dynsld_forest::workload::{GraphUpdate, GraphWorkloadBuilder};
use dynsld_forest::VertexId;
use dynsld_msf::DynamicGraphClustering;
use dynsld_telemetry::{export, Telemetry};

const N: usize = 2_000;
const NUM_EDGES: usize = 4_000;
const WINDOW: usize = 1_000;
/// Shard count of the sharded-service comparison (and the block count of its workload).
const SHARDS: usize = 4;

fn stream() -> Vec<GraphUpdate> {
    GraphWorkloadBuilder::new(N)
        .weight_scale(100.0)
        .sliding_window_stream(NUM_EDGES, WINDOW, 42)
}

/// Shifts every vertex id of `update` up by `offset` (used to relocate a block-local stream
/// into its block's id range).
fn shift(update: GraphUpdate, offset: u32) -> GraphUpdate {
    let bump = |v: VertexId| VertexId(v.0 + offset);
    match update {
        GraphUpdate::Insert { u, v, weight } => GraphUpdate::Insert {
            u: bump(u),
            v: bump(v),
            weight,
        },
        GraphUpdate::Delete { u, v } => GraphUpdate::Delete {
            u: bump(u),
            v: bump(v),
        },
        GraphUpdate::Reweight { u, v, weight } => GraphUpdate::Reweight {
            u: bump(u),
            v: bump(v),
            weight,
        },
    }
}

/// A shard-friendly workload: one independent sliding-window stream per block of
/// `N / SHARDS` vertices, interleaved round-robin. Under a [`BlockPartitioner`] every event
/// is shard-local (zero spill), so the sharded run measures the concurrent-flush machinery
/// itself rather than the spill bottleneck — the regime endpoint partitioning targets (the
/// `partitioner_sweep` bench measures how close `GreedyPartitioner` gets on streams whose
/// structure is *not* laid out in id blocks).
fn block_local_stream() -> Vec<GraphUpdate> {
    let block = N / SHARDS;
    let mut iters: Vec<_> = (0..SHARDS)
        .map(|s| {
            GraphWorkloadBuilder::new(block)
                .weight_scale(100.0)
                .sliding_window_stream(NUM_EDGES / SHARDS, WINDOW / SHARDS, 42 + s as u64)
                .into_iter()
                .map(move |u| shift(u, (s * block) as u32))
                .collect::<Vec<_>>()
                .into_iter()
        })
        .collect();
    let mut stream = Vec::with_capacity(2 * NUM_EDGES);
    loop {
        let mut exhausted = true;
        for it in &mut iters {
            if let Some(update) = it.next() {
                stream.push(update);
                exhausted = false;
            }
        }
        if exhausted {
            return stream;
        }
    }
}

/// Baseline: every event applied immediately through the per-edge MSF path.
fn apply_naive(stream: &[GraphUpdate]) -> DynamicGraphClustering {
    let mut g = DynamicGraphClustering::new(N);
    for &u in stream {
        match u {
            GraphUpdate::Insert { u, v, weight } => {
                g.insert_edge(u, v, weight).expect("valid stream");
            }
            GraphUpdate::Delete { u, v } => {
                g.delete_edge(u, v).expect("valid stream");
            }
            GraphUpdate::Reweight { u, v, weight } => {
                g.update_weight(u, v, weight).expect("valid stream");
            }
        }
    }
    g
}

/// Engine path: buffer `flush_every` events, then flush as coalesced homogeneous batches.
fn apply_engine(stream: &[GraphUpdate], flush_every: usize) -> ClusteringEngine {
    let mut engine = ClusteringEngine::new(N);
    for chunk in stream.chunks(flush_every) {
        for &u in chunk {
            engine.submit(u).expect("valid stream");
        }
        engine.flush().expect("validated at submit time");
    }
    engine
}

fn bench_engine_vs_naive(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("engine_throughput/sliding_window");
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("naive_per_edge", stream.len()),
        &stream,
        |b, s| b.iter(|| apply_naive(s).num_graph_edges()),
    );
    for flush_every in [1usize, 64, 512, 4_096] {
        group.bench_with_input(
            BenchmarkId::new(format!("engine_flush_every_{flush_every}"), stream.len()),
            &stream,
            |b, s| b.iter(|| apply_engine(s, flush_every).epoch()),
        );
    }
    group.finish();
}

/// Coalescing effectiveness in isolation: a redundant churn stream (edges re-weighted and
/// churned repeatedly) where the buffered path applies a fraction of the submitted events.
fn bench_redundant_stream(c: &mut Criterion) {
    let base = GraphWorkloadBuilder::new(N)
        .weight_scale(100.0)
        .churn_stream(WINDOW, 6_000, 7);
    let mut group = c.benchmark_group("engine_throughput/churn_with_reweights");
    group.throughput(Throughput::Elements(base.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("naive_per_edge", base.len()),
        &base,
        |b, s| b.iter(|| apply_naive(s).num_graph_edges()),
    );
    group.bench_with_input(
        BenchmarkId::new("engine_single_flush", base.len()),
        &base,
        |b, s| b.iter(|| apply_engine(s, s.len()).epoch()),
    );
    group.finish();
}

/// Service path: the stream routed across `shards` block-partitioned engines (plus the spill
/// shard when sharded), driven through the handle pipeline and ticked every `flush_every`
/// events. Flushes run concurrently on the fork-join pool whenever it has more than one
/// thread.
fn apply_service(stream: &[GraphUpdate], shards: usize, flush_every: usize) -> ClusterService {
    let service = ServiceBuilder::new()
        .vertices(N)
        .shards(shards)
        .partitioner(BlockPartitioner {
            block_size: N / SHARDS,
        })
        .queue_capacity(flush_every)
        .build()
        .expect("valid bench configuration");
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();
    for chunk in stream.chunks(flush_every) {
        for &u in chunk {
            ingest.submit(u).expect("valid stream");
        }
        driver.pump().expect("validated at routing time");
        driver.flush().expect("validated at routing time");
    }
    driver.into_service()
}

/// Pipeline path for the `ingest_queue` group: a producer thread submits the whole stream
/// through a `Block`-mode handle while the driver is parked on `run_until_closed`, so the
/// measured cost is the full queue handoff — enqueue, backpressure, drain, route,
/// threshold flush — at the given queue depth.
fn apply_pipeline(stream: &[GraphUpdate], shards: usize, queue_depth: usize) -> usize {
    let service = ServiceBuilder::new()
        .vertices(N)
        .shards(shards)
        .partitioner(BlockPartitioner {
            block_size: N / SHARDS,
        })
        .flush_policy(FlushPolicy::EveryNOps(512))
        .queue_capacity(queue_depth)
        .backpressure(Backpressure::Block)
        .build()
        .expect("valid bench configuration");
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();
    std::thread::scope(|s| {
        let producer = ingest.clone();
        s.spawn(move || {
            for &u in stream {
                producer.submit(u).expect("pipeline open");
            }
            producer.close();
        });
        driver
            .run_until_closed()
            .expect("validated at routing time");
    });
    driver.service().published().num_graph_edges()
}

/// Sharding speedup: 1 vs 4 shards over identical workloads, with the shard flushes running
/// concurrently on the work-stealing pool (sequential when `DYNSLD_THREADS=1` or on a
/// single-core host). Two workload shapes:
///
/// * `shards_*` — the block-local stream: every event is shard-local under the
///   [`BlockPartitioner`], so the 4-shard run flushes 4 independent engines in parallel and
///   is where the speedup shows on a multi-core host.
/// * `spill_heavy_shards_*` — the random-endpoint stream: ~3/4 of the events land on the
///   spill shard, whose flush dominates the critical path; the measurable gap to `shards_4`
///   motivated the locality-aware `GreedyPartitioner` (measured by `partitioner_sweep`).
fn bench_sharded_service(c: &mut Criterion) {
    let local = block_local_stream();
    let spill_heavy = stream();
    let mut group = c.benchmark_group("engine_throughput/sharded_service");
    group.throughput(Throughput::Elements(local.len() as u64));
    for shards in [1usize, SHARDS] {
        group.bench_with_input(
            BenchmarkId::new(format!("shards_{shards}"), local.len()),
            &local,
            |b, s| {
                b.iter(|| {
                    let service = apply_service(s, shards, 512);
                    service.published().num_graph_edges()
                })
            },
        );
    }
    group.throughput(Throughput::Elements(spill_heavy.len() as u64));
    for shards in [1usize, SHARDS] {
        group.bench_with_input(
            BenchmarkId::new(format!("spill_heavy_shards_{shards}"), spill_heavy.len()),
            &spill_heavy,
            |b, s| {
                b.iter(|| {
                    let service = apply_service(s, shards, 512);
                    service.published().num_graph_edges()
                })
            },
        );
    }
    group.finish();
}

/// The queued ingest pipeline: producer thread + parked driver, queue depth 1 vs 1024, 1 vs
/// 4 shards, on the block-local (zero-spill) stream. Depth 1 forces a queue handoff on every
/// event — the fully contended submit path — while depth 1024 amortises the lock into
/// batch-sized drains; the gap is the price of backpressure, and the shard axis shows the
/// concurrent flushes still composing with the queue in front.
fn bench_ingest_queue(c: &mut Criterion) {
    let local = block_local_stream();
    let mut group = c.benchmark_group("engine_throughput/ingest_queue");
    group.throughput(Throughput::Elements(local.len() as u64));
    for shards in [1usize, SHARDS] {
        for depth in [1usize, 1024] {
            group.bench_with_input(
                BenchmarkId::new(format!("depth_{depth}_shards_{shards}"), local.len()),
                &local,
                |b, s| b.iter(|| apply_pipeline(s, shards, depth)),
            );
        }
    }
    group.finish();
}

/// Telemetry pass: one *instrumented* run of the sharded pipeline per `flush_every` setting,
/// outside the timing loops, capturing the stage-attributed view — per-shard flush phases
/// (coalesce / classify / apply / export / publish), submit-side queue latency quantiles,
/// drain sizes — into the `--save-json` document's `"telemetry"` array. This is the
/// `BENCH_PR6.json` breakdown: it says *where* the milliseconds of the timing entries above
/// go, at the cost of running with recording on (so its absolute numbers sit slightly above
/// the untraced entries).
fn capture_pipeline_telemetry(_c: &mut Criterion) {
    let local = block_local_stream();
    for flush_every in [1usize, 512] {
        let telemetry = Telemetry::enabled();
        let service = ServiceBuilder::new()
            .vertices(N)
            .shards(SHARDS)
            .partitioner(BlockPartitioner {
                block_size: N / SHARDS,
            })
            .queue_capacity(flush_every)
            .telemetry(telemetry.clone())
            .build()
            .expect("valid bench configuration");
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();
        for chunk in local.chunks(flush_every) {
            for &u in chunk {
                ingest.submit(u).expect("valid stream");
            }
            driver.pump().expect("validated at routing time");
            driver.flush().expect("validated at routing time");
        }
        record_telemetry_json(
            format!("engine_throughput/telemetry/shards_{SHARDS}_flush_every_{flush_every}"),
            export::to_json(&telemetry.snapshot()),
        );
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine_vs_naive, bench_redundant_stream, bench_sharded_service, bench_ingest_queue, capture_pipeline_telemetry
}
criterion_main!(benches);
