//! **Problem 2 / Section 7** — the end-to-end dynamic single-linkage clustering pipeline:
//! dynamic graph → dynamic MSF (`dynsld-msf`) → DynSLD dendrogram maintenance → queries.
//!
//! Measures the sustained update throughput of mixed insert/delete streams on a random graph
//! (most insertions are non-tree and cheap; tree replacements trigger DynSLD updates), and the
//! cost of interleaved threshold / cluster-size queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dynsld::DynSldOptions;
use dynsld_bench::config;
use dynsld_forest::VertexId;
use dynsld_msf::DynamicGraphClustering;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn build_graph(
    n: usize,
    m: usize,
    seed: u64,
) -> (DynamicGraphClustering, Vec<(VertexId, VertexId)>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = DynamicGraphClustering::with_options(
        n,
        DynSldOptions {
            maintain_spine_index: true,
            ..Default::default()
        },
    );
    let mut alive = Vec::new();
    while alive.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let (u, v) = (VertexId(a), VertexId(b));
        if g.edge_weight(u, v).is_some() {
            continue;
        }
        g.insert_edge(u, v, rng.gen::<f64>() * 100.0)
            .expect("valid");
        alive.push((u, v));
    }
    (g, alive)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("problem2/end_to_end");
    for &(n, m) in &[(5_000usize, 20_000usize), (20_000, 80_000)] {
        let (mut g, alive) = build_graph(n, m, 3);
        let mut rng = SmallRng::seed_from_u64(11);
        group.throughput(Throughput::Elements(2));
        group.bench_with_input(
            BenchmarkId::new("delete_reinsert_edge", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let (u, v) = alive[rng.gen_range(0..alive.len())];
                    let w = g.edge_weight(u, v).expect("alive");
                    g.delete_edge(u, v).expect("alive");
                    g.insert_edge(u, v, w).expect("valid");
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("interleaved_queries", format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let a = VertexId(rng.gen_range(0..n as u32));
                    let z = VertexId(rng.gen_range(0..n as u32));
                    let tau = rng.gen::<f64>() * 100.0;
                    let t = g.sld_mut().threshold_connected(a, z, tau);
                    let s = g.sld_mut().cluster_size(a, tau);
                    (t, s)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pipeline
}
criterion_main!(benches);
