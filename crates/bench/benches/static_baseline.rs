//! **Static baseline** — static SLD computation (Section 7 / Dhulipala et al. [19]).
//!
//! Sequential Kruskal-style construction vs. the parallel rank-splitting divide-and-conquer,
//! across input sizes and dendrogram-height regimes. This is the "static recomputation" cost
//! that every dynamic update is compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::{static_sld_kruskal, static_sld_parallel};
use dynsld_bench::{config, N_SWEEP};
use dynsld_forest::gen::{self, WeightOrder};

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_sld");
    for &n in N_SWEEP {
        for (shape, inst) in [
            ("low_h_balanced", gen::path(n, WeightOrder::Balanced)),
            ("high_h_increasing", gen::path(n, WeightOrder::Increasing)),
            ("random_tree", gen::random_tree(n, 5)),
        ] {
            let forest = inst.build_forest();
            group.bench_with_input(
                BenchmarkId::new(format!("kruskal_{shape}"), n),
                &n,
                |b, _| b.iter(|| static_sld_kruskal(&forest)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("parallel_{shape}"), n),
                &n,
                |b, _| b.iter(|| static_sld_parallel(&forest)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_static
}
criterion_main!(benches);
