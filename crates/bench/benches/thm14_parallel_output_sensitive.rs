//! **Theorem 1.4** — parallel output-sensitive insertions.
//!
//! Same c-sweep as the Theorem 1.2 benchmark, comparing the divide-and-conquer (median + PWS)
//! spine merge against the sequential alternating merge and the height-bounded parallel merge.
//! The expected shape: both output-sensitive variants grow with c and are insensitive to h,
//! while the height-bounded algorithm pays Θ(h) regardless of c.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::{DynSld, DynSldOptions, UpdateStrategy};
use dynsld_bench::{config, C_SWEEP};
use dynsld_forest::gen;

fn bench_parallel_output_sensitive(c: &mut Criterion) {
    let n = 60_000;
    let mut group = c.benchmark_group("thm1.4/vs_c");
    for &target_c in C_SWEEP {
        let h = (target_c / 2).max(1);
        let lb = gen::lower_bound_star_paths(n, h);
        let (u, v, w) = lb.update;
        for (name, strategy) in [
            ("output_sensitive_seq", UpdateStrategy::OutputSensitive),
            (
                "output_sensitive_par",
                UpdateStrategy::ParallelOutputSensitive,
            ),
            ("height_bounded_par", UpdateStrategy::Parallel),
        ] {
            let mut sld = DynSld::from_forest(
                lb.instance.build_forest(),
                DynSldOptions::with_strategy(strategy),
            );
            group.bench_with_input(BenchmarkId::new(name, target_c), &target_c, |b, _| {
                b.iter(|| {
                    sld.insert(u, v, w).expect("acyclic");
                    sld.delete(u, v).expect("present");
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parallel_output_sensitive
}
criterion_main!(benches);
