//! **Theorem 1.2** — output-sensitive insertions in `Õ(c)`.
//!
//! Two complementary measurements:
//!
//! 1. `vs_c`: the Theorem 5.1 instance forces `c ≈ 2h` pointer changes; sweeping `h` (at fixed
//!    n) the output-sensitive algorithm must grow with c just like the height-bounded one —
//!    both are near-optimal here because c ≈ h.
//! 2. `low_c_high_h`: on an instance with h = Θ(n) but updates that change only O(1) pointers,
//!    the output-sensitive algorithm must be orders of magnitude faster than the `O(h)`
//!    algorithm — this is the separation the theorem is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::{DynSld, DynSldOptions, UpdateStrategy};
use dynsld_bench::{config, C_SWEEP};
use dynsld_forest::gen;

fn bench_vs_c(c: &mut Criterion) {
    let n = 60_000;
    let mut group = c.benchmark_group("thm1.2/vs_c");
    for &target_c in C_SWEEP {
        let h = (target_c / 2).max(1);
        let lb = gen::lower_bound_star_paths(n, h);
        let (u, v, w) = lb.update;
        let mut seq = DynSld::from_forest(lb.instance.build_forest(), DynSldOptions::default());
        let mut os = DynSld::from_forest(
            lb.instance.build_forest(),
            DynSldOptions::with_strategy(UpdateStrategy::OutputSensitive),
        );
        group.bench_with_input(
            BenchmarkId::new("height_bounded", target_c),
            &target_c,
            |b, _| {
                b.iter(|| {
                    seq.insert(u, v, w).expect("acyclic");
                    seq.delete(u, v).expect("present");
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("output_sensitive", target_c),
            &target_c,
            |b, _| {
                b.iter(|| {
                    os.insert(u, v, w).expect("acyclic");
                    os.delete(u, v).expect("present");
                })
            },
        );
    }
    group.finish();
}

fn bench_low_c_high_h(c: &mut Criterion) {
    // Incremental "star with increasing weights" construction (its dendrogram is a chain, so
    // h grows to n - 2, but every insertion changes only c = 1 pointer): the height-bounded
    // algorithm pays Θ(h) per insertion (Θ(n²) total), the output-sensitive one Õ(1) per
    // insertion. This is the separation Theorem 1.2 is about.
    let mut group = c.benchmark_group("thm1.2/incremental_low_c");
    for &n in &[2_000usize, 8_000] {
        group.bench_with_input(BenchmarkId::new("height_bounded", n), &n, |b, &n| {
            b.iter(|| {
                let mut sld = DynSld::new(n + 1);
                for i in 0..n {
                    sld.insert_seq(
                        dynsld_forest::VertexId(0),
                        dynsld_forest::VertexId(i as u32 + 1),
                        (i + 1) as f64,
                    )
                    .expect("acyclic");
                }
                sld
            })
        });
        group.bench_with_input(BenchmarkId::new("output_sensitive", n), &n, |b, &n| {
            b.iter(|| {
                let mut sld = DynSld::with_options(
                    n + 1,
                    DynSldOptions::with_strategy(UpdateStrategy::OutputSensitive),
                );
                for i in 0..n {
                    sld.insert(
                        dynsld_forest::VertexId(0),
                        dynsld_forest::VertexId(i as u32 + 1),
                        (i + 1) as f64,
                    )
                    .expect("acyclic");
                }
                sld
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_vs_c, bench_low_c_high_h
}
criterion_main!(benches);
