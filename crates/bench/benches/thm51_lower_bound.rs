//! **Theorem 5.1** — the Ω(h) lower-bound instance.
//!
//! The star-of-paths construction forces ≈ 2h pointer changes for a single insertion (and again
//! for the matching deletion). The benchmark measures that forced cost as h grows and records
//! (via the update statistics, printed once per configuration) that the number of structural
//! changes matches the construction, i.e. every algorithm pays Θ(h) here — the height-bounded
//! algorithms because of the spine length, the output-sensitive ones because c itself is Θ(h).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::{DynSld, DynSldOptions, UpdateStrategy};
use dynsld_bench::config;
use dynsld_forest::gen;

fn bench_lower_bound(c: &mut Criterion) {
    let n = 60_000;
    let mut group = c.benchmark_group("thm5.1/forced_changes");
    for &h in &[8usize, 128, 2_048, 16_384] {
        let lb = gen::lower_bound_star_paths(n, h);
        let (u, v, w) = lb.update;
        for (name, strategy) in [
            ("sequential", UpdateStrategy::Sequential),
            ("output_sensitive", UpdateStrategy::OutputSensitive),
        ] {
            let mut sld = DynSld::from_forest(
                lb.instance.build_forest(),
                DynSldOptions::with_strategy(strategy),
            );
            // Record the forced change count once (it is a property of the instance).
            sld.insert(u, v, w).expect("acyclic");
            let forced = sld.stats().last_pointer_changes;
            sld.delete(u, v).expect("present");
            println!("thm5.1: h = {h}, strategy = {name}: forced pointer changes = {forced}");
            group.bench_with_input(BenchmarkId::new(name, h), &h, |b, _| {
                b.iter(|| {
                    sld.insert(u, v, w).expect("acyclic");
                    sld.delete(u, v).expect("present");
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lower_bound
}
criterion_main!(benches);
