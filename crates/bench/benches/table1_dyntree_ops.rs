//! **Table 1** — dynamic-tree operation costs.
//!
//! The paper's Table 1 lists the costs of Link, Cut, Connectivity Query and Path Query on RC
//! trees, sequentially (`O(log n)`) and batch-parallel (`O(k log(1 + n/k))` work). This
//! benchmark measures those operations on the substrates this reproduction uses:
//! the link-cut tree and Euler-tour tree (which provide the `O(log n)` sequential operations the
//! DynSLD updates charge to the dynamic-tree structure), and the RC forest (construction, batch
//! connectivity, and recontraction-based link/cut — see DESIGN.md substitution 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld_bench::{config, K_SWEEP, N_SWEEP};
use dynsld_dyntree::{EulerTourForest, LinkCutTree};
use dynsld_forest::gen::{self, WeightOrder};
use dynsld_forest::{EdgeId, RankKey, VertexId};
use dynsld_rctree::RcForest;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_sequential_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/sequential");
    for &n in N_SWEEP {
        let inst = gen::random_tree(n, 7);
        // Link-cut tree over the tree (vertices only; edges keyed by rank).
        let mut lct = LinkCutTree::with_capacity(2 * n);
        let vnodes: Vec<_> = (0..n).map(|_| lct.add_node(None)).collect();
        for (i, &(a, b, w)) in inst.edges.iter().enumerate() {
            let e = lct.add_node(Some(RankKey::new(w, EdgeId(i as u32))));
            lct.link_edge(vnodes[a.index()], e);
            lct.link_edge(e, vnodes[b.index()]);
        }
        let mut ett = EulerTourForest::new(n);
        for (i, &(a, b, _)) in inst.edges.iter().enumerate() {
            ett.link(a, b, EdgeId(i as u32));
        }
        let mut rng = SmallRng::seed_from_u64(1);

        group.bench_with_input(BenchmarkId::new("lct_link_cut", n), &n, |bench, _| {
            bench.iter(|| {
                // Cut and re-link a random tree edge (keeps the structure unchanged overall).
                let i = rng.gen_range(0..inst.edges.len());
                let (a, _b, _) = inst.edges[i];
                let en = vnodes.len() + i;
                lct.cut_edge(en, vnodes[a.index()]);
                lct.link_edge(en, vnodes[a.index()]);
            })
        });
        group.bench_with_input(BenchmarkId::new("lct_connectivity", n), &n, |bench, _| {
            bench.iter(|| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                lct.connected(vnodes[a], vnodes[b])
            })
        });
        group.bench_with_input(BenchmarkId::new("lct_path_query", n), &n, |bench, _| {
            bench.iter(|| {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                lct.path_max_node(vnodes[a], vnodes[b])
            })
        });
        group.bench_with_input(BenchmarkId::new("ett_link_cut", n), &n, |bench, _| {
            bench.iter(|| {
                let i = rng.gen_range(0..inst.edges.len());
                let (a, b, _) = inst.edges[i];
                ett.cut(EdgeId(i as u32));
                ett.link(a, b, EdgeId(i as u32));
            })
        });
        group.bench_with_input(BenchmarkId::new("ett_connectivity", n), &n, |bench, _| {
            bench.iter(|| {
                let a = VertexId(rng.gen_range(0..n as u32));
                let b = VertexId(rng.gen_range(0..n as u32));
                ett.connected(a, b)
            })
        });
    }
    group.finish();
}

fn bench_rc_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/rc_forest");
    for &n in N_SWEEP {
        let inst = gen::path(n, WeightOrder::Random(3));
        group.bench_with_input(BenchmarkId::new("build", n), &n, |bench, _| {
            bench.iter(|| RcForest::build(inst.build_forest()))
        });
        let mut rc = RcForest::build(inst.build_forest());
        let mut rng = SmallRng::seed_from_u64(5);
        group.bench_with_input(BenchmarkId::new("connectivity", n), &n, |bench, _| {
            bench.iter(|| {
                let a = VertexId(rng.gen_range(0..n as u32));
                let b = VertexId(rng.gen_range(0..n as u32));
                rc.connected(a, b)
            })
        });
        // Recontraction-based cut + link (documented substitution: not O(log n)).
        group.bench_with_input(
            BenchmarkId::new("cut_link_recontract", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let (u, v, w) = inst.edges[n / 2];
                    let e = rc.forest().find_edge(u, v).expect("edge present");
                    rc.cut(e);
                    rc.link(u, v, w);
                })
            },
        );
        // Batch connectivity queries (Table 1, batch-parallel column).
        for &k in K_SWEEP {
            let pairs: Vec<(VertexId, VertexId)> = (0..k)
                .map(|_| {
                    (
                        VertexId(rng.gen_range(0..n as u32)),
                        VertexId(rng.gen_range(0..n as u32)),
                    )
                })
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("batch_connectivity_n{n}"), k),
                &k,
                |bench, _| bench.iter(|| rc.batch_connected(&pairs)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sequential_ops, bench_rc_forest
}
criterion_main!(benches);
