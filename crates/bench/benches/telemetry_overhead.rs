//! Telemetry overhead: the cost of the instrumentation itself, measured where it hurts
//! most — `engine_flush_every_1`, the per-event-flush regime of `engine_throughput`, where
//! every event pays the full span + histogram toll and no batching amortises it.
//!
//! Three entries per workload:
//!
//! * `disabled` — a [`Telemetry::disabled`] registry on the pipeline. This is the default
//!   production configuration; the acceptance bar is that it stays within 5% of the pre-PR
//!   (uninstrumented) `engine_throughput/engine_flush_every_1` baseline, i.e. the one-branch
//!   no-op really is a no-op.
//! * `enabled` — a recording registry: spans into the per-thread rings, stage histograms,
//!   counters. The gap to `disabled` is the opt-in price of `DYNSLD_TRACE=1`.
//! * `enabled_amortised` — the same recording registry at `flush_every = 512`, showing the
//!   toll fading once flushes batch.
//!
//! A `quality` record pins the measured enabled/disabled ratio into the saved document so
//! the trajectory files track it across PRs.

use criterion::{
    criterion_group, criterion_main, record_quality, record_telemetry_json, BenchmarkId, Criterion,
    Throughput,
};
use dynsld_bench::config;
use dynsld_engine::ClusteringEngine;
use dynsld_forest::workload::{GraphUpdate, GraphWorkloadBuilder};
use dynsld_telemetry::{export, Telemetry};
use std::time::Instant;

const N: usize = 2_000;
const NUM_EDGES: usize = 4_000;
const WINDOW: usize = 1_000;

fn stream() -> Vec<GraphUpdate> {
    GraphWorkloadBuilder::new(N)
        .weight_scale(100.0)
        .sliding_window_stream(NUM_EDGES, WINDOW, 42)
}

/// The `engine_throughput` engine path with an explicit telemetry registry on the engine.
fn apply_engine(stream: &[GraphUpdate], flush_every: usize, telemetry: &Telemetry) -> u64 {
    let mut engine = ClusteringEngine::new(N);
    engine.set_telemetry(telemetry.clone());
    for chunk in stream.chunks(flush_every) {
        for &u in chunk {
            engine.submit(u).expect("valid stream");
        }
        engine.flush().expect("validated at submit time");
    }
    engine.epoch()
}

/// Mean seconds per run of `f` over `iters` runs (one warm-up run dropped).
fn time_runs(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("telemetry_overhead/engine_flush_every_1");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("disabled", stream.len()),
        &stream,
        |b, s| {
            let t = Telemetry::disabled();
            b.iter(|| apply_engine(s, 1, &t))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("enabled", stream.len()),
        &stream,
        |b, s| {
            let t = Telemetry::enabled();
            b.iter(|| apply_engine(s, 1, &t))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("enabled_amortised", stream.len()),
        &stream,
        |b, s| {
            let t = Telemetry::enabled();
            b.iter(|| apply_engine(s, 512, &t))
        },
    );
    group.finish();

    // Pin the enabled/disabled ratio (and a telemetry snapshot of one enabled run) into the
    // saved document, outside the criterion timing loops.
    let disabled = Telemetry::disabled();
    let off = time_runs(3, || {
        apply_engine(&stream, 1, &disabled);
    });
    let enabled = Telemetry::enabled();
    let on = time_runs(3, || {
        apply_engine(&stream, 1, &enabled);
    });
    record_quality(
        "telemetry_overhead/engine_flush_every_1/ratio",
        &[
            ("disabled_s", off),
            ("enabled_s", on),
            ("enabled_over_disabled", on / off),
        ],
    );
    record_telemetry_json(
        "telemetry_overhead/engine_flush_every_1/enabled",
        export::to_json(&enabled.snapshot()),
    );
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_telemetry_overhead
}
criterion_main!(benches);
