//! **Table 2** — query costs with an explicit dendrogram (DynSLD) vs. MSF-only.
//!
//! Rows: threshold query (`O(log n)` for both), cluster-size query (`O(log n)` with DynSLD's
//! spine index vs. `O(|S|)` with only the forest), cluster-report query (`O(|S|)` work for
//! both). The cluster size |S| is controlled by the query threshold on a balanced instance, so
//! the expected shape is: DynSLD cluster-size flat in |S|, baseline cluster-size growing
//! linearly in |S|; cluster-report growing linearly for both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynsld::queries::msf_baseline;
use dynsld::{DynSld, DynSldOptions};
use dynsld_bench::config;
use dynsld_forest::gen::{self, WeightOrder};
use dynsld_forest::VertexId;

fn bench_queries(c: &mut Criterion) {
    let n = 65_536;
    // A balanced path: the cluster of any vertex at threshold τ has ≈ τ vertices when weights
    // are assigned by recursive midpoint splitting... more simply, we use an increasing path
    // where the cluster of vertex 0 at threshold τ is exactly the first τ+1 vertices.
    let inst = gen::path(n, WeightOrder::Increasing);
    let mut sld = DynSld::from_forest(
        inst.build_forest(),
        DynSldOptions {
            maintain_spine_index: true,
            ..Default::default()
        },
    );
    let probe = VertexId(0);
    let far = VertexId((n - 1) as u32);

    let mut group = c.benchmark_group("table2");
    for &cluster_size in &[64usize, 1_024, 16_384] {
        let tau = cluster_size as f64; // |S| = tau + 1 on the increasing path
        group.bench_with_input(
            BenchmarkId::new("threshold_dynsld", cluster_size),
            &tau,
            |b, &tau| b.iter(|| sld.threshold_connected(probe, far, tau)),
        );
        group.bench_with_input(
            BenchmarkId::new("cluster_size_dynsld", cluster_size),
            &tau,
            |b, &tau| b.iter(|| sld.cluster_size(probe, tau)),
        );
        group.bench_with_input(
            BenchmarkId::new("cluster_report_dynsld", cluster_size),
            &tau,
            |b, &tau| b.iter(|| sld.cluster_members(probe, tau)),
        );
        group.bench_with_input(
            BenchmarkId::new("cluster_size_msf_only", cluster_size),
            &tau,
            |b, &tau| b.iter(|| msf_baseline::cluster_size(sld.forest(), probe, tau)),
        );
        group.bench_with_input(
            BenchmarkId::new("cluster_report_msf_only", cluster_size),
            &tau,
            |b, &tau| b.iter(|| msf_baseline::cluster_members(sld.forest(), probe, tau)),
        );
        group.bench_with_input(
            BenchmarkId::new("threshold_msf_only", cluster_size),
            &tau,
            |b, &tau| b.iter(|| msf_baseline::threshold_connected(sld.forest(), probe, far, tau)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_queries
}
criterion_main!(benches);
