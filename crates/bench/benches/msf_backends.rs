//! Forest-backend head-to-head: the scan backend's exhaustive replacement search vs the
//! HDT level-structured search (`DYNSLD_MSF_BACKEND`, PR 9), on the workloads where the
//! two differ — tree-edge deletions. Both backends produce bit-identical `MsfChange`
//! streams (pinned by `tests/tests/msf_backends.rs`), so this bench measures pure search
//! cost: wall time per workload and, in the `quality` array, the per-backend
//! `replacement_edges_scanned` / `level_promotions` / `replacement_searches` counters.
//! The headline number is the candidate-examination ratio — the HDT backend must scan
//! measurably fewer replacement candidates on deletion-heavy streams.

use criterion::{
    black_box, criterion_group, criterion_main, record_quality, BenchmarkId, Criterion,
};
use dynsld::{DynSldOptions, ForestBackend};
use dynsld_bench::config;
use dynsld_forest::workload::{GraphUpdate, GraphWorkloadBuilder};
use dynsld_msf::{DynamicGraphClustering, WorkCounters};

const N: usize = 2_000;

/// Deletion-heavy regime: grow a connected graph with a reserve pool, then delete every
/// tree edge's worth of structure — each deletion triggers a replacement search.
fn deletion_heavy_stream() -> Vec<GraphUpdate> {
    let build = GraphWorkloadBuilder::new(N).weight_scale(50.0);
    let mut stream = build.churn_stream(4 * N, 2 * N, 0xDE1);
    // Append a pure deletion tail: replay the alive suffix in reverse so the stream stays
    // valid while the tail is dominated by tree deletions.
    let mut alive: Vec<(u32, u32)> = Vec::new();
    for update in &stream {
        match *update {
            GraphUpdate::Insert { u, v, .. } => alive.push((u.0.min(v.0), u.0.max(v.0))),
            GraphUpdate::Delete { u, v } => {
                let key = (u.0.min(v.0), u.0.max(v.0));
                alive.retain(|&e| e != key);
            }
            GraphUpdate::Reweight { .. } => {}
        }
    }
    stream.extend(alive.into_iter().rev().map(|(a, b)| GraphUpdate::Delete {
        u: dynsld_forest::VertexId(a),
        v: dynsld_forest::VertexId(b),
    }));
    stream
}

/// Mixed churn regime: sustained insert/delete/reweight turnover at a stable edge count.
fn churn_stream() -> Vec<GraphUpdate> {
    GraphWorkloadBuilder::new(N)
        .weight_scale(50.0)
        .churn_stream(4 * N, 6 * N, 0xC4A4)
}

fn apply(stream: &[GraphUpdate], backend: ForestBackend) -> (DynamicGraphClustering, WorkCounters) {
    let mut g = DynamicGraphClustering::with_options(
        N,
        DynSldOptions {
            msf_backend: backend,
            ..DynSldOptions::default()
        },
    );
    for &update in stream {
        match update {
            GraphUpdate::Insert { u, v, weight } => {
                g.insert_edge(u, v, weight).expect("valid stream");
            }
            GraphUpdate::Delete { u, v } => {
                g.delete_edge(u, v).expect("valid stream");
            }
            GraphUpdate::Reweight { u, v, weight } => {
                g.update_weight(u, v, weight).expect("valid stream");
            }
        }
    }
    let counters = g.take_work_counters();
    (g, counters)
}

fn bench_backends(c: &mut Criterion) {
    for (regime, stream) in [
        ("deletion_heavy", deletion_heavy_stream()),
        ("churn", churn_stream()),
    ] {
        let mut group = c.benchmark_group(format!("msf_backends/{regime}"));
        for backend in [ForestBackend::Scan, ForestBackend::Hdt] {
            let label = match backend {
                ForestBackend::Scan => "scan",
                ForestBackend::Hdt => "hdt",
            };
            group.bench_with_input(BenchmarkId::new(label, stream.len()), &stream, |b, s| {
                b.iter(|| black_box(apply(s, backend).0.num_graph_edges()))
            });
            let (_, w) = apply(&stream, backend);
            record_quality(
                format!("msf_backends/{regime}/{label}"),
                &[
                    (
                        "replacement_edges_scanned",
                        w.replacement_edges_scanned as f64,
                    ),
                    ("replacement_searches", w.replacement_searches as f64),
                    ("level_promotions", w.level_promotions as f64),
                ],
            );
        }
        // The acceptance ratio, recorded explicitly: scanned(hdt) / scanned(scan).
        let (_, ws) = apply(&stream, ForestBackend::Scan);
        let (_, wh) = apply(&stream, ForestBackend::Hdt);
        record_quality(
            format!("msf_backends/{regime}/scan_ratio"),
            &[(
                "hdt_scanned_over_scan_scanned",
                wh.replacement_edges_scanned as f64 / ws.replacement_edges_scanned.max(1) as f64,
            )],
        );
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_backends
}
criterion_main!(benches);
