//! Partitioner sweep: spill share and load balance of hash / block / greedy routing on a
//! community-structured stream — the before/after measurement of the locality-aware
//! partitioner work.
//!
//! Workload: a planted-partition churn stream (`GraphWorkloadBuilder::community_stream`)
//! whose communities are *id-scattered* (a seeded permutation, not blocks), so id-based
//! partitioners cannot see them: `HashPartitioner` and `BlockPartitioner` cut ~`1 − 1/k` of
//! the edges at `k` shards, while the assign-on-first-sight `GreedyPartitioner` rediscovers
//! the communities from edge co-occurrence and collapses the spill share towards the planted
//! cross-community rate.
//!
//! Each `(partitioner, shards)` cell is measured twice:
//!
//! * a criterion timing entry (`partitioner_sweep/<p>_shards_<k>`) — end-to-end ingest
//!   throughput through the handle pipeline, where a smaller spill shard means less
//!   serialized work on the critical path;
//! * a `quality/<p>_shards_<k>` record — `spill_routing_share`, `edge_cut_share`, and the
//!   per-shard `event_load_ratio` (max/min routed events across the routed shards), captured
//!   into the `--save-json` document via the shim's `record_quality`. The committed
//!   `BENCH_PR5.json` pins the acceptance numbers: greedy ≤ 0.25 spill share at 4 shards
//!   (vs ~0.75 for hash) with a load ratio ≤ 2.

use criterion::{
    criterion_group, criterion_main, record_quality, record_telemetry_json, BenchmarkId, Criterion,
    Throughput,
};
use dynsld_bench::config;
use dynsld_engine::{
    BlockPartitioner, ClusterService, GreedyPartitioner, HashPartitioner, Metrics, ServiceBuilder,
    ServiceFlushReport,
};
use dynsld_forest::workload::{CommunityStream, GraphUpdate};
use dynsld_forest::GraphWorkloadBuilder;
use dynsld_telemetry::{export, Telemetry};

const N: usize = 2_000;
const COMMUNITIES: usize = 16;
const CROSS_FRACTION: f64 = 0.05;
const TARGET_EDGES: usize = 3_000;
const NUM_OPS: usize = 12_000;
const FLUSH_EVERY: usize = 512;

/// The partitioner configurations under comparison.
#[derive(Copy, Clone, Debug)]
enum Sweep {
    Hash,
    Block,
    Greedy,
}

impl Sweep {
    const ALL: [Sweep; 3] = [Sweep::Hash, Sweep::Block, Sweep::Greedy];

    fn name(self) -> &'static str {
        match self {
            Sweep::Hash => "hash",
            Sweep::Block => "block",
            Sweep::Greedy => "greedy",
        }
    }

    fn configure(self, builder: ServiceBuilder, shards: usize) -> ServiceBuilder {
        match self {
            Sweep::Hash => builder.partitioner(HashPartitioner),
            Sweep::Block => builder.partitioner(BlockPartitioner::covering(N, shards)),
            Sweep::Greedy => builder.stateful_partitioner(GreedyPartitioner::default()),
        }
    }
}

fn stream() -> CommunityStream {
    GraphWorkloadBuilder::new(N)
        .weight_scale(50.0)
        .community_stream(COMMUNITIES, CROSS_FRACTION, TARGET_EDGES, NUM_OPS, 42)
}

/// Drives the whole stream through the handle pipeline (pump + flush every `FLUSH_EVERY`
/// events) and returns the finished service plus the final flush report (whose
/// `shard_event_loads` snapshot covers the whole run, loads being lifetime counters).
fn apply(
    updates: &[GraphUpdate],
    sweep: Sweep,
    shards: usize,
) -> (ClusterService, ServiceFlushReport) {
    apply_with_telemetry(updates, sweep, shards, Telemetry::disabled())
}

/// [`apply`] with an explicit telemetry registry on the pipeline — the telemetry pass runs
/// one instrumented routing run per partitioner through this.
fn apply_with_telemetry(
    updates: &[GraphUpdate],
    sweep: Sweep,
    shards: usize,
    telemetry: Telemetry,
) -> (ClusterService, ServiceFlushReport) {
    let service = sweep
        .configure(ServiceBuilder::new().vertices(N).shards(shards), shards)
        .queue_capacity(FLUSH_EVERY)
        .telemetry(telemetry)
        .build()
        .expect("valid sweep configuration");
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();
    let mut last = ServiceFlushReport::default();
    for chunk in updates.chunks(FLUSH_EVERY) {
        for &u in chunk {
            ingest.submit(u).expect("valid stream");
        }
        driver.pump().expect("validated at routing time");
        last = driver.flush().expect("validated at routing time");
    }
    (driver.into_service(), last)
}

fn bench_partitioner_sweep(c: &mut Criterion) {
    let cs = stream();
    record_quality(
        "partitioner_sweep/workload",
        &[
            ("planted_cut_fraction", cs.planted_cut_fraction()),
            ("communities", COMMUNITIES as f64),
            ("ops", cs.len() as f64),
        ],
    );

    // Quality pass first: one routing run per cell, outside the timing loops.
    for shards in [2usize, 4, 8] {
        for sweep in Sweep::ALL {
            let (service, report) = apply(&cs.updates, sweep, shards);
            let m: Metrics = service.metrics();
            record_quality(
                format!("partitioner_sweep/{}_shards_{}", sweep.name(), shards),
                &[
                    ("spill_routing_share", m.spill_routing_share()),
                    ("edge_cut_share", m.edge_cut_share()),
                    ("event_load_ratio", report.event_load_ratio()),
                ],
            );
        }
    }

    // Telemetry pass: one instrumented run per partitioner at the headline shard count,
    // capturing the stage-attributed breakdown (flush phases, submit latency quantiles,
    // routing time) into the saved document — greedy's routing is where its spill savings
    // are bought, and this is the series that prices it.
    for sweep in Sweep::ALL {
        let telemetry = Telemetry::enabled();
        apply_with_telemetry(&cs.updates, sweep, 4, telemetry.clone());
        record_telemetry_json(
            format!("partitioner_sweep/telemetry/{}_shards_4", sweep.name()),
            export::to_json(&telemetry.snapshot()),
        );
    }

    // Timing pass: end-to-end pipeline throughput per partitioner at the headline shard
    // count (4, the acceptance configuration) plus the unsharded baseline.
    let mut group = c.benchmark_group("partitioner_sweep/community_ingest");
    group.throughput(Throughput::Elements(cs.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("single_shard", cs.len()),
        &cs.updates,
        |b, s| b.iter(|| apply(s, Sweep::Hash, 1).0.published().num_graph_edges()),
    );
    for sweep in Sweep::ALL {
        group.bench_with_input(
            BenchmarkId::new(format!("{}_shards_4", sweep.name()), cs.len()),
            &cs.updates,
            |b, s| b.iter(|| apply(s, sweep, 4).0.published().num_graph_edges()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_partitioner_sweep
}
criterion_main!(benches);
