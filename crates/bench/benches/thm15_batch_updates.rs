//! **Theorem 1.5** — batch-parallel insertions and deletions.
//!
//! Throughput of homogeneous batches of size k: `batch_insert` / `batch_delete` vs. applying the
//! same k updates one at a time vs. recomputing the dendrogram from scratch once per batch. The
//! work bound `O(k·h·log(1 + n/(kh)))` predicts that per-update cost is roughly independent of k
//! (batching does not hurt), while static recomputation per batch only wins once `k·h`
//! approaches `n log h`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dynsld::{static_sld_kruskal, DynSld, DynSldOptions};
use dynsld_bench::{config, K_SWEEP};
use dynsld_forest::gen;
use dynsld_forest::{VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type InsertBatch = Vec<(VertexId, VertexId, Weight)>;
type DeleteBatch = Vec<(VertexId, VertexId)>;

/// A star-shaped insertion batch of size k over a forest of disjoint random trees, plus the
/// matching deletion batch.
fn star_batch(parts: usize, part_size: usize, k: usize, seed: u64) -> (InsertBatch, DeleteBatch) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let inserts: Vec<(VertexId, VertexId, Weight)> = (1..=k)
        .map(|i| {
            (
                VertexId::from_index(rng.gen_range(0..part_size)),
                VertexId::from_index(i * part_size + rng.gen_range(0..part_size)),
                rng.gen::<f64>() * 10.0,
            )
        })
        .collect();
    let deletes = inserts.iter().map(|&(u, v, _)| (u, v)).collect();
    let _ = parts;
    (inserts, deletes)
}

fn bench_batch_updates(c: &mut Criterion) {
    let part_size = 64;
    let parts = 1_200; // ≈ 76k vertices
    let inst = gen::disjoint_random_trees(parts, part_size, 3);
    let mut group = c.benchmark_group("thm1.5/batch_vs_k");
    for &k in K_SWEEP {
        let k = k.min(parts - 1);
        let (inserts, deletes) = star_batch(parts, part_size, k, 7);
        let mut batched = DynSld::from_forest(inst.build_forest(), DynSldOptions::default());
        let mut single = DynSld::from_forest(inst.build_forest(), DynSldOptions::default());
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("batch", k), &k, |b, _| {
            b.iter(|| {
                batched.batch_insert(&inserts).expect("valid batch");
                batched.batch_delete(&deletes).expect("valid batch");
            })
        });
        group.bench_with_input(BenchmarkId::new("one_at_a_time", k), &k, |b, _| {
            b.iter(|| {
                for &(u, v, w) in &inserts {
                    single.insert(u, v, w).expect("acyclic");
                }
                for &(u, v) in &deletes {
                    single.delete(u, v).expect("present");
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("static_recompute_per_batch", k),
            &k,
            |b, _| b.iter(|| static_sld_kruskal(single.forest())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_batch_updates
}
criterion_main!(benches);
