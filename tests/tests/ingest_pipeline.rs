//! The handle-based concurrent ingest pipeline vs the pre-redesign sequential path.
//!
//! The acceptance property of the API redesign: a stream driven through clonable
//! [`IngestHandle`]s and a [`FlusherDriver`] — at any queue capacity, any thread count, any
//! shard count, under any [`FlushPolicy`], with submits and drains interleaved arbitrarily —
//! produces **bit-identical** `flat_clustering` results (labels and member lists, not just
//! observational answers) to a single [`ClusteringEngine`] fed the same stream sequentially.
//! On top of that, the backpressure contract: `Backpressure::Fail` returns an error rather
//! than blocking when the queue is full, `Block` parks the producer until the driver drains,
//! and `Coalesce` absorbs redundant queued events in place.
//!
//! The `DYNSLD_QUEUE_CAP` environment variable (used by the CI matrix with value 1) overrides
//! the queue capacity of every test that can make progress at any capacity, forcing the
//! contended submit path on every event.

use dynsld_engine::{
    Backpressure, BlockPartitioner, ClusteringEngine, FlushPolicy, FlusherDriver, GraphUpdate,
    HashPartitioner, IngestError, ServiceBuilder, ServiceSnapshot,
};
use dynsld_engine::{EngineSnapshot, IngestHandle};
use dynsld_forest::workload::GraphWorkloadBuilder;
use dynsld_forest::VertexId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn ins(a: u32, b: u32, w: f64) -> GraphUpdate {
    GraphUpdate::Insert {
        u: v(a),
        v: v(b),
        weight: w,
    }
}

fn del(a: u32, b: u32) -> GraphUpdate {
    GraphUpdate::Delete { u: v(a), v: v(b) }
}

fn rew(a: u32, b: u32, w: f64) -> GraphUpdate {
    GraphUpdate::Reweight {
        u: v(a),
        v: v(b),
        weight: w,
    }
}

/// The CI contended-path override: `DYNSLD_QUEUE_CAP=1` forces every submit through a full
/// queue, so each test exercises the backpressure machinery on every event.
fn queue_cap(default: usize) -> usize {
    std::env::var("DYNSLD_QUEUE_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Bit-identical equivalence: identical edge counts and byte-for-byte identical canonical
/// clusterings (labels *and* member lists) at every probed threshold. Both the engine
/// snapshot and the merged service snapshot number clusters by smallest member in increasing
/// vertex order, so equality is exact, not just observational.
fn assert_bit_identical(
    pipeline: &ServiceSnapshot,
    oracle: &EngineSnapshot,
    thresholds: &[f64],
    context: &str,
) {
    assert_eq!(
        pipeline.num_graph_edges(),
        oracle.num_graph_edges(),
        "{context}: edge counts diverged"
    );
    for &tau in thresholds {
        let (a, b) = (pipeline.flat_clustering(tau), oracle.flat_clustering(tau));
        assert_eq!(
            a.labels, b.labels,
            "{context}: cluster labels diverged at tau={tau}"
        );
        assert_eq!(
            a.clusters, b.clusters,
            "{context}: cluster members diverged at tau={tau}"
        );
    }
}

/// Submits one event through a `Fail`-mode handle, pumping the driver to make room when the
/// queue is full — the single-threaded way to interleave handle submits with driver drains
/// at any queue capacity (capacity 1 degenerates to pump-per-event, the fully contended
/// path).
fn submit_or_pump(ingest: &IngestHandle, driver: &mut FlusherDriver, event: GraphUpdate) {
    loop {
        match ingest.try_submit(event) {
            Ok(()) => return,
            Err(IngestError::QueueFull { .. }) => {
                driver.pump().expect("validated stream cannot hard-fail");
            }
            Err(e) => panic!("unexpected ingest failure: {e}"),
        }
    }
}

/// The acceptance criterion, single-threaded interleavings: any mix of handle submits and
/// driver drains, over random shard counts, flush policies, queue capacities, and flush
/// thread counts, lands bit-identically on the sequential single-engine oracle at every sync
/// point.
#[test]
fn interleaved_submits_and_drains_match_sequential_oracle() {
    let mut rng = SmallRng::seed_from_u64(0x1D1E5);
    for (case, &(seed, n, shards, threads, cap, policy_pick)) in [
        (3u64, 24usize, 1usize, 1usize, 1usize, 0usize),
        (5, 30, 3, 2, 4, 1),
        (7, 36, 4, 4, 1024, 2),
        (11, 18, 2, 1, 2, 1),
        (13, 40, 5, 3, 7, 0),
        (17, 28, 4, 2, 1, 2),
    ]
    .iter()
    .enumerate()
    {
        let policy = match policy_pick {
            0 => FlushPolicy::Manual,
            1 => FlushPolicy::EveryNOps(1 + (seed as usize) % 13),
            _ => FlushPolicy::OnRead,
        };
        let service = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .threads(threads)
            .flush_policy(policy)
            .queue_capacity(queue_cap(cap))
            .build()
            .expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();
        let mut oracle = ClusteringEngine::new(n);

        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, 250, seed);
        let thresholds = [1.0, 3.5, 6.0, f64::INFINITY];
        for (i, &update) in stream.iter().enumerate() {
            submit_or_pump(&ingest, &mut driver, update);
            oracle.submit(update).expect("generated stream is valid");
            if rng.gen_bool(0.06) {
                // A sync point: everything queued is drained and flushed on both sides.
                driver.pump().expect("validated stream");
                driver.flush().expect("validated stream");
                oracle.flush().expect("validated stream");
                assert_bit_identical(
                    &driver.service().published(),
                    &oracle.snapshot(),
                    &thresholds,
                    &format!("case {case}, after op {i}"),
                );
            }
        }
        driver.pump().expect("validated stream");
        driver.flush().expect("validated stream");
        oracle.flush().expect("validated stream");
        assert_bit_identical(
            &driver.service().published(),
            &oracle.snapshot(),
            &thresholds,
            &format!("case {case}, final state"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The satellite property: any interleaving of handle submits and driver drains, under
    /// `FlushPolicy::OnRead` or `EveryNOps` (the policies whose flush points the driver now
    /// controls), yields a flat clustering identical to the single-shard sequential oracle.
    #[test]
    fn queued_policies_match_sequential_oracle(
        seed in 0u64..1 << 48,
        n in 6usize..36,
        shards in 1usize..5,
        cap in 1usize..48,
        every_n in 1usize..17,
        on_read in any::<bool>(),
        use_block_partitioner in any::<bool>(),
    ) {
        let policy = if on_read {
            FlushPolicy::OnRead
        } else {
            FlushPolicy::EveryNOps(every_n)
        };
        let builder = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .flush_policy(policy)
            .queue_capacity(queue_cap(cap));
        let builder = if use_block_partitioner {
            builder.partitioner(BlockPartitioner { block_size: 1 + n / shards.max(1) })
        } else {
            builder.partitioner(HashPartitioner)
        };
        let service = builder.build().expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();
        let mut oracle = ClusteringEngine::new(n);

        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37);
        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, 160, seed);
        for &update in &stream {
            submit_or_pump(&ingest, &mut driver, update);
            oracle.submit(update).expect("generated stream is valid");
            if rng.gen_bool(0.1) {
                driver.pump().expect("validated stream");
            }
        }
        driver.pump().expect("validated stream");
        driver.flush().expect("validated stream");
        oracle.flush().expect("validated stream");
        assert_bit_identical(
            &driver.service().published(),
            &oracle.snapshot(),
            &[0.5, 2.0, 4.5, 7.0, f64::INFINITY],
            "final state",
        );
    }
}

/// The acceptance pin for producers and the driver on *different threads*: clonable handles
/// under `Backpressure::Block`, a parked `run_until_closed` driver, any queue capacity and
/// thread count — the published clustering is bit-identical to the sequential oracle.
#[test]
fn threaded_producers_match_sequential_oracle() {
    for &(threads, cap, shards, producers) in &[
        (1usize, 1usize, 1usize, 1usize),
        (4, 3, 4, 3),
        (2, 1024, 2, 2),
    ] {
        let n = 48;
        let stream = GraphWorkloadBuilder::new(n).weight_scale(8.0).churn_stream(
            3 * n,
            600,
            0xF00D ^ threads as u64,
        );
        let service = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .threads(threads)
            .flush_policy(FlushPolicy::EveryNOps(32))
            .queue_capacity(queue_cap(cap))
            .backpressure(Backpressure::Block)
            .build()
            .expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();

        // The producer thread rotates its submits across several handle clones — the stream
        // must stay in order (clustering is order-sensitive in general, and this test pins
        // equality, not commutativity), so the clones take turns rather than race.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..producers).map(|_| ingest.clone()).collect();
            let events = &stream;
            s.spawn(move || {
                for (i, &event) in events.iter().enumerate() {
                    handles[i % handles.len()]
                        .submit(event)
                        .expect("queue open");
                }
                ingest.close();
            });
            let report = driver.run_until_closed().expect("validated stream");
            assert_eq!(report.events_drained, stream.len());
            assert!(report.rejected.is_empty());
        });

        let mut oracle = ClusteringEngine::new(n);
        oracle.submit_all(stream.iter().copied()).unwrap();
        oracle.flush().unwrap();
        assert_bit_identical(
            &driver.service().published(),
            &oracle.snapshot(),
            &[1.0, 2.5, 5.0, 7.5, f64::INFINITY],
            &format!("threads={threads}, cap={cap}, shards={shards}"),
        );
    }
}

/// The backpressure acceptance criterion: with `Backpressure::Fail`, a submit into a full
/// queue returns `IngestError::QueueFull` (carrying the event back) instead of blocking.
#[test]
fn fail_backpressure_errors_instead_of_blocking_when_full() {
    let service = ServiceBuilder::new()
        .vertices(8)
        .queue_capacity(1) // deliberately not env-overridable: the arithmetic below needs 1
        .backpressure(Backpressure::Fail)
        .build()
        .unwrap();
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();

    ingest.submit(ins(0, 1, 1.0)).unwrap();
    // Queue full: the submit returns *immediately* with the event, rather than waiting for
    // the driver.
    assert_eq!(
        ingest.submit(ins(1, 2, 2.0)),
        Err(IngestError::QueueFull {
            event: ins(1, 2, 2.0)
        })
    );
    assert_eq!(driver.service().metrics().queue_full_rejections, 1);
    // Draining makes room; the bounced event can be resubmitted by the caller.
    driver.pump().unwrap();
    ingest.submit(ins(1, 2, 2.0)).unwrap();
    driver.pump().unwrap();
    driver.flush().unwrap();
    assert!(driver
        .service()
        .published()
        .same_cluster(v(0), v(2), f64::INFINITY));
}

/// `Backpressure::Block` parks the producer until the driver drains — no event is lost, no
/// error surfaces, and the producer observes the queue's bound.
#[test]
fn block_backpressure_waits_for_the_driver() {
    let n = 32;
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(5.0)
        .churn_stream(2 * n, 400, 0xB10C);
    let service = ServiceBuilder::new()
        .vertices(n)
        .queue_capacity(queue_cap(2)) // tiny: producers outrun the driver immediately
        .backpressure(Backpressure::Block)
        .build()
        .unwrap();
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();

    std::thread::scope(|s| {
        let producer = ingest.clone();
        let events = &stream;
        s.spawn(move || {
            for &event in events {
                producer
                    .submit(event)
                    .expect("block mode never errs while open");
            }
            producer.close();
        });
        let report = driver.run_until_closed().expect("validated stream");
        assert_eq!(report.events_drained, stream.len());
    });
    let m = driver.service().metrics();
    assert_eq!(m.events_enqueued, stream.len() as u64);
    assert_eq!(m.queue_full_rejections, 0);
}

/// `Backpressure::Coalesce` compacts redundant queued events instead of blocking: a burst of
/// re-weights of one edge fits through a capacity-1 queue with no consumer running.
#[test]
fn coalesce_backpressure_absorbs_redundancy_in_place() {
    let service = ServiceBuilder::new()
        .vertices(4)
        .queue_capacity(1) // deliberately fixed: the single-threaded flow relies on it
        .backpressure(Backpressure::Coalesce)
        .build()
        .unwrap();
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();

    // One queued insert, then a re-weight burst: every event after the first merges into the
    // queued operation — no driver, no blocking.
    ingest.submit(ins(0, 1, 1.0)).unwrap();
    for w in [2.0, 3.0, 4.0, 5.0] {
        ingest.submit(rew(0, 1, w)).unwrap();
    }
    assert_eq!(ingest.queue_len(), 1);
    let m = driver.service().metrics();
    assert_eq!(m.events_compacted_in_queue, 4);
    driver.pump().unwrap();
    driver.flush().unwrap();
    let snap = driver.service().published();
    assert!(snap.same_cluster(v(0), v(1), 5.0));
    assert!(
        !snap.same_cluster(v(0), v(1), 4.5),
        "only the last weight applies"
    );

    // An insert⊕delete pair annihilates in-queue: the edge never reaches a shard.
    ingest.submit(ins(2, 3, 1.0)).unwrap();
    ingest.submit(del(2, 3)).unwrap();
    assert_eq!(ingest.queue_len(), 0);
    driver.pump().unwrap();
    driver.flush().unwrap();
    assert!(!driver
        .service()
        .published()
        .same_cluster(v(2), v(3), f64::INFINITY));
}

/// Under the queued path, `FlushPolicy::OnRead` means "every drain publishes": a single pump
/// makes everything submitted visible to read handles, with no explicit flush call.
#[test]
fn on_read_policy_publishes_on_every_drain() {
    let service = ServiceBuilder::new()
        .vertices(8)
        .shards(2)
        .flush_policy(FlushPolicy::OnRead)
        .queue_capacity(queue_cap(64))
        .build()
        .unwrap();
    let ingest = service.ingest_handle();
    let reader = service.read_handle();
    let mut driver = service.into_driver();

    submit_or_pump(&ingest, &mut driver, ins(0, 1, 1.0));
    submit_or_pump(&ingest, &mut driver, ins(1, 2, 2.0));
    // Nothing drained yet (unless the contended-path override forced pumps): the reader may
    // or may not see the events. After one pump, it *must* see both.
    let report = driver.pump().unwrap();
    assert!(report.flushes.ops_applied() > 0 || report.events_drained == 0);
    let snap = reader.snapshot();
    assert_eq!(snap.num_graph_edges(), 2);
    assert!(snap.same_cluster(v(0), v(2), 2.0));
    assert_eq!(
        driver.service().pending_ops(),
        0,
        "OnRead leaves nothing buffered"
    );
}

/// Under the queued path, `FlushPolicy::EveryNOps` still flushes shard-locally at the
/// threshold — now inside the driver's drain, reported through the `DrainReport`.
#[test]
fn every_n_ops_policy_flushes_inside_the_drain() {
    let service = ServiceBuilder::new()
        .vertices(8)
        .shards(2)
        .partitioner(BlockPartitioner { block_size: 4 })
        .flush_policy(FlushPolicy::EveryNOps(2))
        .queue_capacity(queue_cap(64))
        .build()
        .unwrap();
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();

    // Two events for shard 0 (threshold), one for shard 1 (stays buffered). The threshold
    // flush fires inside whichever drain routes the second shard-0 event — visible in the
    // epoch vector no matter how the contended-path override slices the drains.
    for event in [ins(0, 1, 1.0), ins(1, 2, 1.0), ins(4, 5, 1.0)] {
        submit_or_pump(&ingest, &mut driver, event);
    }
    driver.pump().unwrap();
    assert_eq!(
        driver.service().epochs(),
        vec![1, 0, 0],
        "exactly the threshold-crossing shard flushed"
    );
    assert_eq!(driver.service().pending_ops(), 1);
    // The buffered remainder is published by the close-time flush.
    ingest.close();
    let final_report = driver.run_until_closed().unwrap();
    assert!(final_report.flushes.ops_applied() >= 1);
    assert_eq!(driver.service().pending_ops(), 0);
    assert!(driver.service().published().same_cluster(v(4), v(5), 1.0));
}

/// Routing-time rejections surface in the `DrainReport`, not at the submit call — the queue
/// decouples producers from shard state — and the rest of the drain proceeds.
#[test]
fn invalid_events_surface_in_the_drain_report() {
    let service = ServiceBuilder::new()
        .vertices(4)
        .queue_capacity(queue_cap(16))
        .build()
        .unwrap();
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();

    // The delete targets an absent edge; the submit itself succeeds (validation is the
    // driver's job now), the surrounding valid events still apply. Rejections are gathered
    // across every drain, because the contended-path override slices the drains arbitrarily.
    let mut rejected = Vec::new();
    for event in [ins(0, 1, 1.0), del(2, 3), ins(1, 2, 2.0)] {
        loop {
            match ingest.try_submit(event) {
                Ok(()) => break,
                Err(IngestError::QueueFull { .. }) => {
                    rejected.extend(driver.pump().unwrap().rejected);
                }
                Err(e) => panic!("queue unexpectedly closed: {e}"),
            }
        }
    }
    ingest.close();
    rejected.extend(driver.run_until_closed().unwrap().rejected);
    assert_eq!(rejected.len(), 1);
    let snap = driver.service().published();
    assert_eq!(snap.num_graph_edges(), 2);
    assert!(snap.same_cluster(v(0), v(2), 2.0));
}

/// The observability acceptance criterion: running the identical pipeline with telemetry
/// recording enabled changes *nothing* about the output — published clusterings (labels and
/// member lists), epoch vectors, and edge counts are bit-identical to the untraced run, with
/// submits and drains interleaved the same way on both sides. Meanwhile the enabled side
/// actually records: stage histograms populated, span trace well-formed.
#[test]
fn telemetry_enabled_pipeline_is_bit_identical_to_disabled() {
    use dynsld_telemetry::Telemetry;
    let n = 40;
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(8.0)
        .churn_stream(2 * n, 320, 0x7E1E);
    let telemetry = Telemetry::enabled();
    let build = |telemetry: Telemetry| {
        ServiceBuilder::new()
            .vertices(n)
            .shards(3)
            .flush_policy(FlushPolicy::EveryNOps(7))
            .queue_capacity(queue_cap(5))
            .telemetry(telemetry)
            .build()
            .expect("valid configuration")
    };
    let traced = build(telemetry.clone());
    let untraced = build(Telemetry::disabled());
    let (traced_ingest, untraced_ingest) = (traced.ingest_handle(), untraced.ingest_handle());
    let mut traced_driver = traced.into_driver();
    let mut untraced_driver = untraced.into_driver();

    let mut rng = SmallRng::seed_from_u64(0x0B5);
    for &update in &stream {
        submit_or_pump(&traced_ingest, &mut traced_driver, update);
        submit_or_pump(&untraced_ingest, &mut untraced_driver, update);
        if rng.gen_bool(0.08) {
            traced_driver.pump().expect("validated stream");
            untraced_driver.pump().expect("validated stream");
        }
    }
    for driver in [&mut traced_driver, &mut untraced_driver] {
        driver.pump().expect("validated stream");
        driver.flush().expect("validated stream");
    }

    let (a, b) = (
        traced_driver.service().published(),
        untraced_driver.service().published(),
    );
    assert_eq!(a.epochs(), b.epochs(), "epoch vectors diverged");
    assert_eq!(a.num_graph_edges(), b.num_graph_edges());
    for tau in [1.0, 3.0, 5.5, f64::INFINITY] {
        let (ca, cb) = (a.flat_clustering(tau), b.flat_clustering(tau));
        assert_eq!(ca.labels, cb.labels, "labels diverged at tau={tau}");
        assert_eq!(ca.clusters, cb.clusters, "members diverged at tau={tau}");
    }

    // The traced side really was recording, and its trace is structurally sound.
    let snap = telemetry.snapshot();
    for series in ["ingest.submit_ns", "engine.flush_ns", "engine.apply_ns"] {
        assert!(
            snap.histogram(series).is_some_and(|h| !h.is_empty()),
            "series {series} missing or empty"
        );
    }
    snap.trace.check_well_formed().expect("well-formed trace");
    assert!(snap.trace.total_events() > 0);
    // And the untraced side recorded nothing anywhere.
    assert!(untraced_driver.service().telemetry().snapshot().is_empty());
}

/// Read handles are epoch-pinned: a held snapshot keeps answering for its epoch vector while
/// the driver advances, and fresh reads observe the new epochs.
#[test]
fn read_handles_pin_epochs_across_driver_progress() {
    let service = ServiceBuilder::new()
        .vertices(8)
        .shards(2)
        .queue_capacity(queue_cap(64))
        .build()
        .unwrap();
    let ingest = service.ingest_handle();
    let reader = service.read_handle();
    let mut driver = service.into_driver();

    submit_or_pump(&ingest, &mut driver, ins(0, 4, 1.0));
    driver.pump().unwrap();
    driver.flush().unwrap();
    let pinned = reader.snapshot();
    assert!(pinned.same_cluster(v(0), v(4), 1.0));
    let pinned_epochs = pinned.epochs();

    submit_or_pump(&ingest, &mut driver, del(0, 4));
    driver.pump().unwrap();
    driver.flush().unwrap();
    // The held snapshot is frozen; a fresh read moves on.
    assert!(pinned.same_cluster(v(0), v(4), 1.0));
    assert_eq!(pinned.epochs(), pinned_epochs);
    let fresh = reader.snapshot();
    assert!(!fresh.same_cluster(v(0), v(4), f64::INFINITY));
    assert!(fresh.epochs() > pinned_epochs);
}
