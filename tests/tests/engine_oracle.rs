//! Engine-level correctness: the served clusterings must equal static recomputation after
//! every flush, and snapshots must be consistent — a reader never observes a half-applied
//! batch, mid-batch queries reflect exactly the pre-batch epoch, and old snapshots keep
//! answering for their epoch after later flushes.
//!
//! The stream-facing tests here drive `ClusterService::single_shard` through the handle API
//! (`IngestHandle` + `FlusherDriver`) — the pipeline every caller is expected to use — while
//! the mid-batch/epoch tests exercise `ClusteringEngine` directly, since they pin the
//! per-shard guarantees the service's merged views are built on. Sharded-vs-oracle
//! equivalence lives in `service_oracle.rs`; pipeline-vs-sequential bit-identity in
//! `ingest_pipeline.rs`.

use dynsld::static_sld_kruskal;
use dynsld_engine::{ClusterService, ClusteringEngine, FlusherDriver, GraphUpdate, ShardId};
use dynsld_forest::workload::{validate_graph_stream, GraphWorkloadBuilder};
use dynsld_forest::{Dsu, VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Canonical partition of `0..n` induced by merging all edges of weight `<= tau`: sorted
/// member lists, sorted by first member.
fn oracle_partition(
    n: usize,
    alive: &[(VertexId, VertexId, Weight)],
    tau: Weight,
) -> Vec<Vec<VertexId>> {
    let mut dsu = Dsu::new(n);
    for &(a, b, w) in alive {
        if w <= tau {
            dsu.union(a, b);
        }
    }
    let mut by_root: std::collections::BTreeMap<u32, Vec<VertexId>> = Default::default();
    for i in 0..n as u32 {
        by_root
            .entry(dsu.find(VertexId(i)).0)
            .or_default()
            .push(VertexId(i));
    }
    let mut out: Vec<Vec<VertexId>> = by_root.into_values().collect();
    for c in &mut out {
        c.sort();
    }
    out.sort();
    out
}

/// Canonicalises a flat clustering into the oracle's sorted-partition form.
fn partition_of(fc: &dynsld::FlatClustering) -> Vec<Vec<VertexId>> {
    let mut out: Vec<Vec<VertexId>> = fc
        .clusters
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.sort();
            c
        })
        .collect();
    out.sort();
    out
}

fn snapshot_partition(snap: &dynsld_engine::EngineSnapshot, tau: Weight) -> Vec<Vec<VertexId>> {
    partition_of(&snap.flat_clustering(tau))
}

/// The oracle check the issue asks for: after every flush, the served flat clustering at
/// several thresholds equals the independent union-find oracle over the alive graph edges, and
/// the maintained dendrogram equals `static_sld_kruskal` on the current MSF. Driven through
/// the handle pipeline over `ClusterService::single_shard`, the migration path from the PR-1
/// engine surface.
#[test]
fn randomized_stream_matches_static_oracle_after_every_flush() {
    let n = 48usize;
    let thresholds = [0.5, 1.5, 2.5, 4.0, 6.5, 10.0, f64::INFINITY];
    let builder = GraphWorkloadBuilder::new(n).weight_scale(8.0);
    let stream = builder.churn_stream(90, 900, 0xD1CE);
    assert_eq!(validate_graph_stream(n, &stream), Ok(900));

    let service = ClusterService::single_shard(n);
    let ingest = service.ingest_handle();
    let mut driver = FlusherDriver::new(service);
    let mut alive: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut flushes = 0usize;
    for (i, &update) in stream.iter().enumerate() {
        // Track the reference edge set.
        match update {
            GraphUpdate::Insert { u, v, weight } => alive.push((u, v, weight)),
            GraphUpdate::Delete { u, v } => {
                let key = if u <= v { (u, v) } else { (v, u) };
                let pos = alive
                    .iter()
                    .position(|&(a, b, _)| (a.min(b), a.max(b)) == key)
                    .expect("stream deletes present edges");
                alive.swap_remove(pos);
            }
            GraphUpdate::Reweight { u, v, weight } => {
                let key = if u <= v { (u, v) } else { (v, u) };
                let entry = alive
                    .iter_mut()
                    .find(|&&mut (a, b, _)| (a.min(b), a.max(b)) == key)
                    .expect("stream re-weights present edges");
                entry.2 = weight;
            }
        }
        ingest.submit(update).expect("queue open");

        // Flush at random batch boundaries (and at the end).
        if rng.gen_bool(0.08) || i + 1 == stream.len() {
            let drain = driver.pump().expect("validated stream cannot hard-fail");
            assert!(drain.rejected.is_empty(), "generated stream is valid");
            driver
                .flush()
                .expect("flush cannot fail on validated input");
            flushes += 1;
            let snap = driver.service().published();
            assert_eq!(snap.num_graph_edges(), alive.len());
            for &tau in &thresholds {
                assert_eq!(
                    partition_of(&snap.flat_clustering(tau)),
                    oracle_partition(n, &alive, tau),
                    "partition diverged at flush {flushes}, tau={tau}"
                );
            }
            // The dendrogram served by the (single) shard equals static recomputation.
            let sld = driver.service().shard(ShardId::Routed(0)).graph().sld();
            assert_eq!(
                sld.dendrogram().canonical_parents(),
                static_sld_kruskal(sld.forest()).canonical_parents(),
                "dendrogram diverged from static recomputation at flush {flushes}"
            );
            sld.check_invariants().expect("invariants");
        }
    }
    assert!(
        flushes > 10,
        "the test should exercise many flushes, got {flushes}"
    );
    let m = driver.service().metrics();
    assert_eq!(m.ops_applied + m.events_saved(), m.events_submitted);
    assert_eq!(m.events_enqueued, stream.len() as u64);
    assert!(m.fast_path_ops > 0, "batches should ride the fast path");
}

/// Snapshot consistency: queries taken mid-batch reflect exactly the pre-batch epoch, and a
/// snapshot keeps answering for its epoch after arbitrarily many later flushes.
#[test]
fn snapshots_reflect_exactly_the_pre_batch_epoch() {
    let n = 30usize;
    let builder = GraphWorkloadBuilder::new(n).weight_scale(5.0);
    let stream = builder.churn_stream(50, 400, 7);
    let mut engine = ClusteringEngine::new(n);
    let thresholds = [1.0, 2.5, 4.0];

    let mut held: Vec<(dynsld_engine::EngineSnapshot, Vec<Vec<Vec<VertexId>>>)> = Vec::new();
    for chunk in stream.chunks(40) {
        // Pre-batch reference: what the published snapshot answers right now.
        let pre = engine.snapshot();
        let pre_answers: Vec<Vec<Vec<VertexId>>> = thresholds
            .iter()
            .map(|&tau| snapshot_partition(&pre, tau))
            .collect();
        let pre_epoch = pre.epoch();

        // Mid-batch: submit without flushing; the snapshot must not move.
        for &u in chunk {
            engine.submit(u).unwrap();
        }
        assert_eq!(
            engine.snapshot().epoch(),
            pre_epoch,
            "epoch moved mid-batch"
        );
        for (i, &tau) in thresholds.iter().enumerate() {
            assert_eq!(
                snapshot_partition(&engine.snapshot(), tau),
                pre_answers[i],
                "mid-batch query diverged from the pre-batch epoch"
            );
        }

        engine.flush().unwrap();
        assert_eq!(engine.snapshot().epoch(), pre_epoch + 1);
        // The pre-batch snapshot is frozen forever; remember it and re-check later.
        held.push((pre, pre_answers));
    }
    // Every historical snapshot still answers exactly as it did when current.
    for (snap, answers) in &held {
        for (i, &tau) in thresholds.iter().enumerate() {
            assert_eq!(&snapshot_partition(snap, tau), &answers[i]);
        }
    }
    // Epochs are dense and ordered.
    let epochs: Vec<u64> = held.iter().map(|(s, _)| s.epoch()).collect();
    assert_eq!(epochs, (0..held.len() as u64).collect::<Vec<_>>());
}

/// Concurrent readers on snapshot clones while the writer keeps flushing: every reader must
/// see an internally consistent frozen state (partition covers all vertices; cluster count at
/// +inf equals the component count; epoch never changes under its feet).
#[test]
fn concurrent_readers_never_observe_partial_batches() {
    let n = 40usize;
    let builder = GraphWorkloadBuilder::new(n).weight_scale(6.0);
    let stream = builder.churn_stream(70, 600, 21);
    let mut engine = ClusteringEngine::new(n);

    let mut handles = Vec::new();
    for chunk in stream.chunks(30) {
        for &u in chunk {
            engine.submit(u).unwrap();
        }
        engine.flush().unwrap();
        let snap = engine.snapshot();
        // Hand the snapshot to a reader thread that interrogates it while the main thread
        // keeps mutating the engine.
        handles.push(std::thread::spawn(move || {
            let epoch = snap.epoch();
            for tau in [0.5, 2.0, 3.5, 5.0, f64::INFINITY] {
                let fc = snap.flat_clustering(tau);
                let total: usize = fc.clusters.iter().map(Vec::len).sum();
                assert_eq!(
                    total,
                    snap.num_vertices(),
                    "partition must cover all vertices"
                );
                assert!(fc.num_clusters() >= snap.num_components());
            }
            assert_eq!(
                snap.num_clusters(f64::INFINITY),
                snap.num_components(),
                "at tau=inf clusters are exactly the components"
            );
            assert_eq!(snap.epoch(), epoch, "snapshot epoch drifted");
            epoch
        }));
    }
    let mut epochs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    epochs.dedup();
    assert_eq!(epochs.len(), 20, "one distinct epoch per flush");
}

/// Coalescing correctness at the engine level: a stream with heavy redundancy produces the
/// same final state as its net effect, while applying far fewer operations.
#[test]
fn coalesced_and_naive_application_converge() {
    let n = 26usize;
    let builder = GraphWorkloadBuilder::new(n).weight_scale(9.0);
    let stream = builder.churn_stream(40, 500, 3);

    // Naive: a pipeline drained and flushed after every event (no coalescing effect).
    let naive_service = ClusterService::single_shard(n);
    let naive_ingest = naive_service.ingest_handle();
    let mut naive = naive_service.into_driver();
    for &u in &stream {
        naive_ingest.submit(u).unwrap();
        naive.pump().unwrap();
        naive.flush().unwrap();
    }
    // Coalesced: the whole stream queued, drained, and flushed once.
    let coalesced_service = ClusterService::single_shard(n);
    let coalesced_ingest = coalesced_service.ingest_handle();
    let mut coalesced = coalesced_service.into_driver();
    for &u in &stream {
        coalesced_ingest.submit(u).unwrap();
    }
    coalesced.pump().unwrap();
    coalesced.flush().unwrap();

    assert!(
        coalesced.service().metrics().ops_applied < naive.service().metrics().ops_applied,
        "coalescing must reduce applied operations ({} vs {})",
        coalesced.service().metrics().ops_applied,
        naive.service().metrics().ops_applied,
    );
    for tau in [1.0, 3.0, 5.0, 8.0, f64::INFINITY] {
        assert_eq!(
            partition_of(&naive.service().published().flat_clustering(tau)),
            partition_of(&coalesced.service().published().flat_clustering(tau)),
            "final clusterings diverged at tau={tau}"
        );
    }
    let canon = |d: &FlusherDriver| {
        let mut edges = d.service().shard(ShardId::Routed(0)).graph().graph_edges();
        edges.sort_by_key(|a| (a.0.min(a.1), a.0.max(a.1)));
        edges
    };
    assert_eq!(canon(&naive), canon(&coalesced));
}
