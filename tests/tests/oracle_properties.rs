//! Property-based tests: every dynamic update algorithm, applied to arbitrary valid update
//! sequences, must keep the maintained dendrogram equal to static recomputation (the SLD is
//! unique given the rank total order), keep the structural invariants, and keep all algorithm
//! variants in agreement with each other.

use dynsld::{static_sld_kruskal, static_sld_parallel, DynSld, DynSldOptions, UpdateStrategy};
use dynsld_forest::gen::TreeInstance;
use dynsld_forest::{Dsu, VertexId, Weight};
use proptest::prelude::*;

/// A raw update script over `n` vertices: pairs plus weights, interpreted by [`apply_script`].
#[derive(Clone, Debug)]
struct Script {
    n: usize,
    ops: Vec<(usize, usize, Weight, bool)>,
}

fn script_strategy(max_n: usize, max_ops: usize) -> impl Strategy<Value = Script> {
    (2..max_n).prop_flat_map(move |n| {
        let op = (0..n, 0..n, 0.0..100.0f64, any::<bool>());
        proptest::collection::vec(op, 1..max_ops).prop_map(move |ops| Script { n, ops })
    })
}

/// Interprets a raw script as a *valid* update sequence: an op `(a, b, w, is_insert)` becomes an
/// insertion if the edge would keep the forest acyclic and the edge is absent, or a deletion if
/// the edge is present; invalid ops are skipped. Returns the applied updates.
fn apply_script<F>(script: &Script, mut apply: F) -> usize
where
    F: FnMut(bool, VertexId, VertexId, Weight),
{
    let mut dsu_edges: Vec<(usize, usize, Weight)> = Vec::new();
    let mut applied = 0;
    for &(a, b, w, want_insert) in &script.ops {
        if a == b {
            continue;
        }
        let present = dsu_edges
            .iter()
            .position(|&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a));
        if want_insert {
            if present.is_some() {
                continue;
            }
            // Cycle check.
            let mut dsu = Dsu::new(script.n);
            for &(x, y, _) in &dsu_edges {
                dsu.union(VertexId(x as u32), VertexId(y as u32));
            }
            if dsu.connected(VertexId(a as u32), VertexId(b as u32)) {
                continue;
            }
            dsu_edges.push((a, b, w));
            apply(true, VertexId(a as u32), VertexId(b as u32), w);
            applied += 1;
        } else if let Some(idx) = present {
            dsu_edges.swap_remove(idx);
            apply(false, VertexId(a as u32), VertexId(b as u32), 0.0);
            applied += 1;
        }
    }
    applied
}

/// A dendrogram node keyed by its edge's endpoints, paired with its parent's endpoints.
type SemanticParent = ((VertexId, VertexId), Option<(VertexId, VertexId)>);

/// Parent assignment keyed by edge *endpoints* rather than edge ids, so that two structures
/// that assigned ids in a different order (e.g. batch vs. single updates) can be compared.
/// Valid whenever edge weights are distinct (the generated weights are random `f64`s).
fn semantic_parents(sld: &DynSld) -> Vec<SemanticParent> {
    let norm = |a: VertexId, b: VertexId| if a <= b { (a, b) } else { (b, a) };
    let mut out: Vec<_> = sld
        .dendrogram()
        .nodes()
        .map(|e| {
            let (u, v) = sld.forest().endpoints(e);
            let parent = sld.parent_of(e).map(|p| {
                let (a, b) = sld.forest().endpoints(p);
                norm(a, b)
            });
            (norm(u, v), parent)
        })
        .collect();
    out.sort();
    out
}

fn all_strategies() -> Vec<(&'static str, DynSldOptions)> {
    vec![
        (
            "sequential",
            DynSldOptions::with_strategy(UpdateStrategy::Sequential),
        ),
        (
            "output-sensitive",
            DynSldOptions::with_strategy(UpdateStrategy::OutputSensitive),
        ),
        (
            "parallel",
            DynSldOptions::with_strategy(UpdateStrategy::Parallel),
        ),
        (
            "parallel-output-sensitive",
            DynSldOptions::with_strategy(UpdateStrategy::ParallelOutputSensitive),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every update strategy matches static recomputation after an arbitrary update sequence.
    #[test]
    fn all_strategies_match_static_recomputation(script in script_strategy(24, 60)) {
        for (name, options) in all_strategies() {
            let mut sld = DynSld::with_options(script.n, options);
            apply_script(&script, |insert, u, v, w| {
                if insert {
                    sld.insert(u, v, w).unwrap();
                } else {
                    sld.delete(u, v).unwrap();
                }
            });
            sld.check_invariants().unwrap();
            let fresh = static_sld_kruskal(sld.forest());
            prop_assert_eq!(
                sld.dendrogram().canonical_parents(),
                fresh.canonical_parents(),
                "strategy {} diverged from the static oracle",
                name
            );
        }
    }

    /// Batch updates agree with one-at-a-time updates when the whole script is applied as
    /// insertion batches followed by deletion batches.
    #[test]
    fn batch_updates_agree_with_single_updates(
        script in script_strategy(20, 40),
        batch_size in 1usize..8,
    ) {
        // Derive a valid insertion set and deletion set from the script.
        let mut inserts: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        let mut deletes: Vec<(VertexId, VertexId)> = Vec::new();
        apply_script(&script, |insert, u, v, w| {
            if insert {
                inserts.push((u, v, w));
            } else {
                deletes.push((u, v));
                inserts.retain(|&(a, b, _)| !((a, b) == (u, v) || (b, a) == (u, v)));
            }
        });
        // Apply all final edges as batches of the requested size.
        let mut batched = DynSld::new(script.n);
        let mut single = DynSld::new(script.n);
        for chunk in inserts.chunks(batch_size.max(1)) {
            batched.batch_insert(chunk).unwrap();
            for &(u, v, w) in chunk {
                single.insert(u, v, w).unwrap();
            }
        }
        // Batch processing may assign edge ids in a different order, so compare by endpoints.
        prop_assert_eq!(semantic_parents(&batched), semantic_parents(&single));
        // And delete half of them again in batches.
        let to_delete: Vec<(VertexId, VertexId)> = inserts
            .iter()
            .step_by(2)
            .map(|&(u, v, _)| (u, v))
            .collect();
        for chunk in to_delete.chunks(batch_size.max(1)) {
            batched.batch_delete(chunk).unwrap();
            for &(u, v) in chunk {
                single.delete(u, v).unwrap();
            }
        }
        prop_assert_eq!(semantic_parents(&batched), semantic_parents(&single));
        prop_assert_eq!(
            batched.dendrogram().canonical_parents(),
            static_sld_kruskal(batched.forest()).canonical_parents()
        );
        batched.check_invariants().unwrap();
    }

    /// The parallel static algorithm always equals the sequential one.
    #[test]
    fn parallel_static_matches_kruskal(script in script_strategy(40, 80)) {
        let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        apply_script(&script, |insert, u, v, w| {
            if insert {
                edges.push((u, v, w));
            } else {
                edges.retain(|&(a, b, _)| !((a, b) == (u, v) || (b, a) == (u, v)));
            }
        });
        let forest = TreeInstance { n: script.n, edges }.build_forest();
        prop_assert_eq!(
            static_sld_kruskal(&forest).canonical_parents(),
            static_sld_parallel(&forest).canonical_parents()
        );
    }

    /// c (the number of structural changes) is a property of the update, not of the algorithm:
    /// the height-bounded and the output-sensitive insertion report the same count.
    #[test]
    fn pointer_change_counts_are_algorithm_independent(script in script_strategy(18, 40)) {
        let mut seq = DynSld::new(script.n);
        let mut os = DynSld::with_options(
            script.n,
            DynSldOptions::with_strategy(UpdateStrategy::OutputSensitive),
        );
        let mut checked = 0usize;
        apply_script(&script, |insert, u, v, w| {
            if insert {
                seq.insert_seq(u, v, w).unwrap();
                os.insert_output_sensitive(u, v, w).unwrap();
                assert_eq!(
                    seq.stats().last_pointer_changes,
                    os.stats().last_pointer_changes
                );
                checked += 1;
            } else {
                seq.delete_seq(u, v).unwrap();
                os.delete_seq(u, v).unwrap();
            }
        });
        prop_assert!(checked <= script.ops.len());
    }

    /// Cluster-size queries with and without the spine index agree with the MSF-only baseline.
    #[test]
    fn cluster_queries_agree_with_baseline(
        script in script_strategy(20, 40),
        tau in 0.0..120.0f64,
        probe in 0usize..20,
    ) {
        let mut with_index = DynSld::with_options(
            script.n,
            DynSldOptions {
                maintain_spine_index: true,
                strategy: UpdateStrategy::Sequential,
                ..Default::default()
            },
        );
        apply_script(&script, |insert, u, v, w| {
            if insert {
                with_index.insert(u, v, w).unwrap();
            } else {
                with_index.delete(u, v).unwrap();
            }
        });
        let probe = VertexId((probe % script.n) as u32);
        let expected = dynsld::queries::msf_baseline::cluster_size(with_index.forest(), probe, tau);
        prop_assert_eq!(with_index.cluster_size(probe, tau), expected);
        let members = with_index.cluster_members(probe, tau);
        prop_assert_eq!(members.len(), expected);
        prop_assert!(members.contains(&probe));
    }
}
