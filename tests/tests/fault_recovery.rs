//! Fault isolation and recovery: an injected panic mid-flush must quarantine exactly one
//! shard while the service keeps serving (stale-flagged) and accepting ingest, and
//! journal-replay recovery must land **bit-identical** to a no-fault oracle fed the same
//! stream — canonical labels AND sorted member lists, across shard counts × flush policies
//! × partitioners. The wire half: a subscriber must survive a server kill/restart and
//! injected torn writes mid-delta-chain with zero divergence from the published view.

use dynsld_engine::{
    FaultPlan, FlushPolicy, FlusherDriver, GreedyPartitioner, HashPartitioner, ServiceBuilder,
    ServiceSnapshot, ShardId,
};
use dynsld_forest::workload::GraphWorkloadBuilder;
use dynsld_serve::{DeltaServer, ServerOptions, SyncOutcome, WireConfig, WireSubscriber};
use dynsld_telemetry::Telemetry;
use proptest::prelude::*;
use std::time::Duration;

/// Thresholds the equivalence is checked at.
const TAUS: [f64; 4] = [1.0, 2.0, 5.0, f64::INFINITY];

fn drain(driver: &mut FlusherDriver) {
    driver.pump().expect("validated stream");
    driver
        .flush()
        .expect("flush isolates faults, never errors on them");
}

/// Labels and member lists of two published views must agree exactly at every threshold.
fn assert_views_bit_identical(a: &ServiceSnapshot, b: &ServiceSnapshot, context: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{context}");
    assert_eq!(a.num_graph_edges(), b.num_graph_edges(), "{context}");
    for tau in TAUS {
        let (ca, cb) = (a.flat_clustering(tau), b.flat_clustering(tau));
        assert_eq!(
            ca.labels, cb.labels,
            "{context}: labels diverged at tau={tau}"
        );
        assert_eq!(
            ca.clusters, cb.clusters,
            "{context}: member lists diverged at tau={tau}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The PR's acceptance property. A service whose shard `s` panics torn (mid-batch) on
    /// its `f`-th flush keeps flushing every other shard, keeps accepting ingest into the
    /// quarantined shard (journaled), and after `recover_shard` is bit-identical to a
    /// no-fault oracle fed the identical stream — across shards × flush policies ×
    /// partitioners, with vertex growth landing while the shard is down.
    #[test]
    fn panic_quarantine_recover_is_bit_identical_to_oracle(
        seed in 0u64..1 << 48,
        n in 6usize..32,
        shards in 1usize..4,
        num_ops in 16usize..120,
        policy_pick in 0usize..3,
        greedy in any::<bool>(),
        panic_shard in 0usize..4,
        panic_flush in 1u64..4,
        growth in 0usize..3,
    ) {
        let policy = match policy_pick {
            0 => FlushPolicy::Manual,
            1 => FlushPolicy::EveryNOps(1),
            _ => FlushPolicy::EveryNOps(4),
        };
        let build = |faults: FaultPlan| {
            let builder = ServiceBuilder::new()
                .vertices(n)
                .shards(shards)
                .flush_policy(policy)
                .faults(faults);
            let builder = if greedy {
                builder.stateful_partitioner(GreedyPartitioner::default())
            } else {
                builder.partitioner(HashPartitioner)
            };
            builder.build().expect("valid configuration")
        };
        // `panic_shard` may exceed the engine count (then the rule never matches) or name
        // the spill shard — both are part of the property.
        let spec = format!("flush_panic=shard:{panic_shard},flush:{panic_flush}");
        let faulted = build(FaultPlan::parse(&spec).expect("valid spec"));
        let oracle = build(FaultPlan::disabled());

        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, num_ops, seed);
        let split = stream.len() / 2;

        let mut services = [faulted.into_driver(), oracle.into_driver()];
        for driver in &mut services {
            let ingest = driver.service().ingest_handle();
            ingest.submit_all(stream[..split].iter().copied()).expect("queue open");
            drain(driver);
            // Growth mid-stream: while the faulted shard may already be quarantined, the
            // journal must carry the growth to the replay.
            if growth > 0 {
                driver.add_vertices(growth);
            }
            ingest.submit_all(stream[split..].iter().copied()).expect("queue open");
            drain(driver);
        }
        let [mut faulted, oracle] = services;

        // Whatever got quarantined: the flush reports said so, reads stayed available
        // (stale-flagged), and ingest was never refused.
        let stale = faulted.service().published().stale_shards();
        for &shard in &stale {
            let report = faulted.recover_shard(shard).expect("replay of a valid stream");
            prop_assert!(report.rejected.is_empty(), "the stream was valid end-to-end");
            prop_assert!(report.events_replayed > 0 || growth > 0);
        }
        prop_assert!(!faulted.service().published().is_stale());
        if !stale.is_empty() {
            let metrics = faulted.service().metrics();
            prop_assert_eq!(metrics.shards_quarantined, stale.len() as u64);
            prop_assert_eq!(metrics.shard_recoveries, stale.len() as u64);
            prop_assert!(metrics.shard_panics_caught >= stale.len() as u64);
        }
        assert_views_bit_identical(
            &faulted.service().published(),
            &oracle.service().published(),
            &format!("seed={seed} spec={spec} policy={policy:?} stale={stale:?}"),
        );
    }
}

/// A torn flush leaves the service serving the shard's last-published epoch, flagged stale:
/// strict reads refuse with the shard's name, availability reads are counted, and ingest
/// keeps flowing into the journal.
#[test]
fn quarantined_shard_serves_stale_and_accepts_ingest() {
    use dynsld_engine::{GraphUpdate, ServiceError};
    use dynsld_forest::VertexId;
    let ins = |a: u32, b: u32, w: f64| GraphUpdate::Insert {
        u: VertexId(a),
        v: VertexId(b),
        weight: w,
    };
    let service = ServiceBuilder::new()
        .vertices(8)
        .shards(2)
        .partitioner(dynsld_engine::BlockPartitioner { block_size: 4 })
        .faults(FaultPlan::parse("flush_panic=shard:0,flush:2").expect("valid spec"))
        .build()
        .expect("valid configuration");
    let ingest = service.ingest_handle();
    let read = service.read_handle();
    let mut driver = service.into_driver();

    ingest.submit(ins(0, 1, 1.0)).unwrap();
    drain(&mut driver);
    ingest.submit(ins(1, 2, 2.0)).unwrap();
    drain(&mut driver); // shard 0's second flush tears
    let snapshot = read.snapshot();
    assert!(snapshot.is_stale());
    assert_eq!(snapshot.stale_shards(), vec![ShardId::Routed(0)]);
    // The pre-panic epoch is served; the torn batch is not.
    assert!(snapshot.same_cluster(VertexId(0), VertexId(1), 1.5));
    assert!(!snapshot.same_cluster(VertexId(1), VertexId(2), 5.0));
    assert!(matches!(
        read.snapshot_strict(),
        Err(ServiceError::ShardQuarantined {
            shard: ShardId::Routed(0)
        })
    ));
    // Ingest into the quarantined shard is journaled, then replayed on recovery.
    ingest.submit(ins(2, 3, 3.0)).unwrap();
    drain(&mut driver);
    driver.recover_shard(ShardId::Routed(0)).expect("replay");
    let recovered = read.snapshot_strict().expect("healthy again");
    assert!(recovered.same_cluster(VertexId(1), VertexId(2), 5.0));
    assert!(recovered.same_cluster(VertexId(2), VertexId(3), 5.0));
    assert!(driver.service().metrics().stale_reads_served >= 1);
}

/// An `entry`-mode injected panic fires before any buffered work is consumed; the service
/// proves the catch path and retries transparently — no quarantine, and the final state is
/// exactly the no-fault oracle's.
#[test]
fn entry_panics_are_retried_transparently_across_a_whole_stream() {
    let n = 24;
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(6.0)
        .churn_stream(2 * n, 80, 11);
    let build = |faults: FaultPlan| {
        ServiceBuilder::new()
            .vertices(n)
            .shards(3)
            .flush_policy(FlushPolicy::EveryNOps(4))
            .faults(faults)
            .build()
            .expect("valid configuration")
    };
    let mut faulted =
        build(FaultPlan::parse("flush_panic=every:3,entry").expect("valid spec")).into_driver();
    let mut oracle = build(FaultPlan::disabled()).into_driver();
    for driver in [&mut faulted, &mut oracle] {
        let ingest = driver.service().ingest_handle();
        ingest
            .submit_all(stream.iter().copied())
            .expect("queue open");
        drain(driver);
    }
    let metrics = faulted.service().metrics();
    assert!(metrics.shard_panics_caught > 0, "the fault plan fired");
    assert_eq!(metrics.shards_quarantined, 0, "entry panics never tear");
    assert!(!faulted.service().published().is_stale());
    assert_views_bit_identical(
        &faulted.service().published(),
        &oracle.service().published(),
        "entry-retry stream",
    );
}

/// `recover_shard` on a **healthy** shard is a contractual no-op — it must not silently
/// rebuild the engine. Nothing is replayed, the shard's epoch and the published revision
/// are untouched, and the recovery counter stays at zero.
#[test]
fn recovering_a_healthy_shard_is_a_pinned_no_op() {
    use dynsld_engine::GraphUpdate;
    use dynsld_forest::VertexId;
    let service = ServiceBuilder::new()
        .vertices(8)
        .shards(2)
        .partitioner(dynsld_engine::BlockPartitioner { block_size: 4 })
        .build()
        .expect("valid configuration");
    let ingest = service.ingest_handle();
    let read = service.read_handle();
    let mut driver = service.into_driver();
    ingest
        .submit(GraphUpdate::Insert {
            u: VertexId(0),
            v: VertexId(1),
            weight: 1.0,
        })
        .unwrap();
    drain(&mut driver);

    let before = read.snapshot();
    assert!(!before.is_stale());
    for shard in [ShardId::Routed(0), ShardId::Routed(1), ShardId::Spill] {
        let report = driver.recover_shard(shard).expect("healthy recovery is Ok");
        assert_eq!(report.shard, shard);
        assert_eq!(report.events_replayed, 0, "{shard:?}: nothing to replay");
        assert!(report.rejected.is_empty());
    }
    let after = read.snapshot();
    assert_eq!(after.revision(), before.revision(), "no republish happened");
    assert_eq!(after.epochs(), before.epochs(), "no engine was rebuilt");
    assert_eq!(driver.service().metrics().shard_recoveries, 0);
    assert_views_bit_identical(&before, &after, "healthy-shard no-op recovery");
}

/// Server killed mid-delta-chain: a subscriber that already mirrored revision `r0` syncs
/// against a restarted server (same service, new socket) and — because the delta ring still
/// covers its anchor — catches up via the delta chain, bit-identical to the published view.
/// Torn writes injected on the restarted server are absorbed by the retry loop.
#[test]
fn subscriber_survives_server_restart_and_torn_writes_mid_chain() {
    let n = 16;
    let service = ServiceBuilder::new()
        .vertices(n)
        .shards(2)
        .flush_policy(FlushPolicy::Manual)
        .delta_ring(4096)
        .build()
        .expect("valid configuration");
    let ingest = service.ingest_handle();
    let read = service.read_handle();
    let mut driver = service.into_driver();
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(8.0)
        .churn_stream(2 * n, 60, 7);
    let split = stream.len() / 2;

    ingest
        .submit_all(stream[..split].iter().copied())
        .expect("queue open");
    drain(&mut driver);

    let first =
        DeltaServer::bind("127.0.0.1:0", read.clone(), Telemetry::disabled()).expect("bind");
    let mut subscriber = WireSubscriber::connect_with(
        first.local_addr(),
        WireConfig {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            ..WireConfig::default()
        },
    )
    .expect("connect");
    let base = subscriber.sync().expect("initial full sync");
    assert!(matches!(base.outcome, SyncOutcome::Refreshed { .. }));

    // Kill the server mid-chain: the service advances while nothing is listening.
    first.shutdown();
    for &update in &stream[split..] {
        ingest.submit(update).expect("queue open");
        drain(&mut driver);
    }

    // Restart on a fresh socket (same ReadHandle — same service), with a torn write
    // injected on the first connection the restarted server accepts. The subscriber
    // repoints, keeps its mirror, and the retry loop rides through the truncated response
    // until a whole delta chain lands.
    let second = DeltaServer::bind_with(
        "127.0.0.1:0",
        read.clone(),
        Telemetry::disabled(),
        ServerOptions {
            faults: FaultPlan::parse("torn_write=conn:1,after:40").expect("valid spec"),
            ..ServerOptions::default()
        },
    )
    .expect("rebind");
    subscriber.reconnect(second.local_addr()).expect("repoint");
    let caught_up = subscriber.sync().expect("retries absorb torn writes");
    assert!(
        matches!(caught_up.outcome, SyncOutcome::Patched { .. }),
        "ring covered the gap, so the catch-up must be a delta chain (got {:?})",
        caught_up.outcome
    );

    // Zero divergence: the wire replica equals the published view bit-for-bit.
    let published = read.snapshot();
    let mirror = subscriber.mirror().expect("synced");
    assert_eq!(mirror.revision(), published.revision());
    assert_eq!(mirror.epochs(), published.epochs());
    for tau in TAUS {
        let (a, b) = (mirror.flat_clustering(tau), published.flat_clustering(tau));
        assert_eq!(a.labels, b.labels, "labels diverged at tau={tau}");
        assert_eq!(a.clusters, b.clusters, "member lists diverged at tau={tau}");
    }
    let stats = subscriber.stats();
    assert!(
        stats.retries >= 1,
        "the injected torn writes forced retries"
    );
    second.shutdown();
}
