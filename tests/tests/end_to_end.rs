//! Cross-crate integration tests: the full pipeline (dynamic graph → dynamic MSF → DynSLD →
//! queries), larger-scale runs of every update strategy, and consistency between the dynamic
//! structures and the RC-tree / static baselines.

use dynsld::{static_sld_kruskal, DynSld, DynSldOptions, UpdateStrategy};
use dynsld_forest::gen::{self, WeightOrder};
use dynsld_forest::workload::{Update, UpdateBatch, WorkloadBuilder};
use dynsld_forest::VertexId;
use dynsld_msf::{DynamicGraphClustering, MsfChange};
use dynsld_rctree::RcForest;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

#[test]
fn medium_scale_churn_all_strategies_agree() {
    let inst = gen::random_tree(400, 12);
    let wb = WorkloadBuilder::new(inst.clone());
    let stream = wb.churn_stream(1_500, 99);

    let mut variants: Vec<(UpdateStrategy, DynSld)> = [
        UpdateStrategy::Sequential,
        UpdateStrategy::OutputSensitive,
        UpdateStrategy::Parallel,
        UpdateStrategy::ParallelOutputSensitive,
    ]
    .into_iter()
    .map(|s| {
        (
            s,
            DynSld::from_forest(inst.build_forest(), DynSldOptions::with_strategy(s)),
        )
    })
    .collect();

    for up in &stream {
        for (_, sld) in variants.iter_mut() {
            match *up {
                Update::Insert { u, v, weight } => {
                    sld.insert(u, v, weight).unwrap();
                }
                Update::Delete { u, v } => {
                    sld.delete(u, v).unwrap();
                }
            }
        }
    }
    let reference = static_sld_kruskal(variants[0].1.forest()).canonical_parents();
    for (strategy, sld) in &variants {
        assert_eq!(
            sld.dendrogram().canonical_parents(),
            reference,
            "{strategy:?} diverged after churn"
        );
        sld.check_invariants().unwrap();
    }
}

#[test]
fn batch_pipeline_large_star_and_teardown() {
    // Build a 10k-vertex forest by batch insertions, then tear half of it down by batch
    // deletions, verifying against static recomputation at checkpoints.
    let inst = gen::random_tree(10_000, 5);
    let wb = WorkloadBuilder::new(inst.clone());
    let mut sld = DynSld::new(inst.n);
    for batch in wb.insertion_batches(512, 7) {
        let UpdateBatch::Insertions(edges) = batch else {
            unreachable!()
        };
        sld.batch_insert(&edges).unwrap();
    }
    assert_eq!(sld.num_edges(), inst.num_edges());
    assert_eq!(
        sld.dendrogram().canonical_parents(),
        static_sld_kruskal(sld.forest()).canonical_parents()
    );
    let mut deleted = 0;
    for batch in wb.deletion_batches(256, 11) {
        let UpdateBatch::Deletions(pairs) = batch else {
            unreachable!()
        };
        sld.batch_delete(&pairs).unwrap();
        deleted += pairs.len();
        if deleted > inst.num_edges() / 2 {
            break;
        }
    }
    assert_eq!(
        sld.dendrogram().canonical_parents(),
        static_sld_kruskal(sld.forest()).canonical_parents()
    );
}

#[test]
fn graph_pipeline_queries_track_msf_changes() {
    // The end-to-end Problem-2 pipeline on a random graph with planted two-level structure.
    let n = 500usize;
    let mut rng = SmallRng::seed_from_u64(77);
    let mut graph = DynamicGraphClustering::with_options(
        n,
        DynSldOptions {
            maintain_spine_index: true,
            ..Default::default()
        },
    );
    // Dense intra-block edges (distance < 1), sparse inter-block edges (distance > 10).
    let block = |x: usize| x / 50;
    let mut alive = Vec::new();
    for _ in 0..4_000 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let (u, w) = (v(a as u32), v(b as u32));
        if graph.edge_weight(u, w).is_some() {
            continue;
        }
        let dist = if block(a) == block(b) {
            rng.gen::<f64>()
        } else {
            10.0 + rng.gen::<f64>()
        };
        graph.insert_edge(u, w, dist).unwrap();
        alive.push((u, w));
    }
    // Threshold queries must agree with a from-scratch bounded search on the maintained MSF,
    // and cross-block connectivity at a light threshold requires a light path, which the planted
    // weights never provide.
    for (a, b, tau) in [
        (0u32, 20u32, 2.0),
        (0, 70, 2.0),
        (0, 70, 20.0),
        (13, 487, 0.5),
    ] {
        let expected = dynsld::queries::msf_baseline::threshold_connected(
            graph.sld().forest(),
            v(a),
            v(b),
            tau,
        );
        assert_eq!(
            graph.sld_mut().threshold_connected(v(a), v(b), tau),
            expected,
            "threshold query mismatch for ({a}, {b}, {tau})"
        );
    }
    assert!(
        !graph.sld_mut().threshold_connected(v(0), v(70), 2.0),
        "different blocks are only reachable through heavy inter-block edges"
    );

    // Delete a third of the edges and re-verify the dendrogram against static recomputation.
    for _ in 0..alive.len() / 3 {
        let idx = rng.gen_range(0..alive.len());
        let (a, b) = alive.swap_remove(idx);
        let change = graph.delete_edge(a, b).unwrap();
        assert!(matches!(
            change,
            MsfChange::RemovedNonTree
                | MsfChange::RemovedWithReplacement { .. }
                | MsfChange::RemovedAndSplit
        ));
    }
    assert_eq!(
        graph.sld().dendrogram().canonical_parents(),
        static_sld_kruskal(graph.sld().forest()).canonical_parents()
    );
    graph.sld().check_invariants().unwrap();
}

#[test]
fn rc_tree_agrees_with_dynsld_connectivity() {
    let inst = gen::random_tree(2_000, 21);
    let sld = DynSld::from_forest(inst.build_forest(), DynSldOptions::default());
    let mut rc = RcForest::build(inst.build_forest());
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..200 {
        let a = v(rng.gen_range(0..2_000));
        let b = v(rng.gen_range(0..2_000));
        assert_eq!(rc.connected(a, b), sld.connected(a, b));
        assert_eq!(rc.component_size(a), sld.component_size(a));
    }
    // Cut the same edge in both structures and re-compare.
    let e = sld.forest().edge_ids().nth(1_000).unwrap();
    let (a, b) = sld.forest().endpoints(e);
    let mut sld = sld;
    sld.delete(a, b).unwrap();
    let rc_edge = rc.forest().find_edge(a, b).unwrap();
    rc.cut(rc_edge);
    for _ in 0..100 {
        let x = v(rng.gen_range(0..2_000));
        let y = v(rng.gen_range(0..2_000));
        assert_eq!(rc.connected(x, y), sld.connected(x, y));
    }
}

#[test]
fn height_regimes_behave_as_expected() {
    // h = n - 2 for increasing paths and stars, Θ(log n) for balanced paths; the dynamic
    // structure reports the same heights as the paper's analysis assumes.
    let n = 2_048;
    let path = DynSld::from_forest(
        gen::path(n, WeightOrder::Increasing).build_forest(),
        DynSldOptions::default(),
    );
    assert_eq!(path.height(), n - 2);
    let star = DynSld::from_forest(gen::star(n).build_forest(), DynSldOptions::default());
    assert_eq!(star.height(), n - 2);
    let balanced = DynSld::from_forest(
        gen::path(n, WeightOrder::Balanced).build_forest(),
        DynSldOptions::default(),
    );
    assert!(balanced.height() <= 13);
    let controlled = DynSld::from_forest(
        gen::path_with_height(n, 100).build_forest(),
        DynSldOptions::default(),
    );
    let h = controlled.height();
    assert!(
        (100..200).contains(&h),
        "target-height generator produced h = {h}"
    );
}

#[test]
fn theorem_5_1_worst_case_is_reached_by_all_insertion_algorithms() {
    let h = 50;
    let lb = gen::lower_bound_star_paths(1_000, h);
    for strategy in [
        UpdateStrategy::Sequential,
        UpdateStrategy::OutputSensitive,
        UpdateStrategy::Parallel,
        UpdateStrategy::ParallelOutputSensitive,
    ] {
        let mut sld = DynSld::from_forest(
            lb.instance.build_forest(),
            DynSldOptions::with_strategy(strategy),
        );
        let (cu, cv, w) = lb.update;
        sld.insert(cu, cv, w).unwrap();
        let c = sld.stats().last_pointer_changes;
        assert!(
            (2 * h..=2 * h + 1).contains(&c),
            "{strategy:?}: expected ~2h = {} pointer changes, got {c}",
            2 * h
        );
        assert_eq!(
            sld.dendrogram().canonical_parents(),
            static_sld_kruskal(sld.forest()).canonical_parents()
        );
    }
}
