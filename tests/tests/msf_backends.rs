//! Backend bit-identity: the HDT level-structured MSF engine (`ForestBackend::Hdt`) must be
//! observationally indistinguishable from the reference scan backend — not merely "same
//! clustering", but the same [`MsfChange`] on every single update, the same dendrogram
//! snapshot, and the same canonical labels AND member lists through the full sharded
//! pipeline, across shard counts × flush policies × partitioners. The backends are allowed
//! to differ **only** in their work counters (how many replacement candidates they examine).
//! The last property pins the fault path: a quarantined HDT shard recovered by journal
//! replay must land bit-identical to a no-fault *scan* service fed the same stream.

use dynsld::{DynSldOptions, ForestBackend};
use dynsld_engine::{
    BlockPartitioner, FaultPlan, FlushPolicy, FlusherDriver, GreedyPartitioner, HashPartitioner,
    ServiceBuilder, ServiceSnapshot,
};
use dynsld_forest::workload::{GraphUpdate, GraphWorkloadBuilder};
use dynsld_msf::DynamicGraphClustering;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Thresholds the pipeline-level identity is checked at.
const TAUS: [f64; 4] = [1.0, 2.5, 6.0, f64::INFINITY];

fn clustering(backend: ForestBackend, n: usize) -> DynamicGraphClustering {
    DynamicGraphClustering::with_options(
        n,
        DynSldOptions {
            msf_backend: backend,
            ..DynSldOptions::default()
        },
    )
}

/// Applies one update to a clustering, returning the change (or the rejection).
fn apply(
    g: &mut DynamicGraphClustering,
    update: GraphUpdate,
) -> Result<dynsld_msf::MsfChange, dynsld::DynSldError> {
    match update {
        GraphUpdate::Insert { u, v, weight } => g.insert_edge(u, v, weight),
        GraphUpdate::Delete { u, v } => g.delete_edge(u, v),
        GraphUpdate::Reweight { u, v, weight } => g.update_weight(u, v, weight),
    }
}

fn drain(driver: &mut FlusherDriver) -> ServiceSnapshot {
    driver.pump().expect("validated stream");
    driver.flush().expect("validated stream");
    driver.service().published()
}

/// Labels and member lists of two published views must agree exactly at every threshold.
fn assert_views_bit_identical(a: &ServiceSnapshot, b: &ServiceSnapshot, context: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{context}");
    assert_eq!(a.num_graph_edges(), b.num_graph_edges(), "{context}");
    for tau in TAUS {
        let (ca, cb) = (a.flat_clustering(tau), b.flat_clustering(tau));
        assert_eq!(
            ca.labels, cb.labels,
            "{context}: labels diverged at tau={tau}"
        );
        assert_eq!(
            ca.clusters, cb.clusters,
            "{context}: member lists diverged at tau={tau}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The core identity, per update: for every generated insert/delete/reweight stream, the
    /// HDT backend reports the **same [`MsfChange`]** as the scan backend on every single
    /// operation, and the exported dendrogram snapshots (version, nodes, ranks) are equal at
    /// every sync point. Only the work counters may differ — and the HDT backend must
    /// actually be doing its level-structured search (it runs the same number of
    /// replacement searches while examining no more candidates than the scan).
    #[test]
    fn hdt_reports_bit_identical_changes_and_dendrograms(
        seed in 0u64..1 << 48,
        n in 4usize..48,
        num_ops in 20usize..400,
        weight_scale in 1usize..10,
    ) {
        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(weight_scale as f64)
            .churn_stream(2 * n, num_ops, seed);
        let mut scan = clustering(ForestBackend::Scan, n);
        let mut hdt = clustering(ForestBackend::Hdt, n);
        prop_assert_eq!(scan.backend(), ForestBackend::Scan);
        prop_assert_eq!(hdt.backend(), ForestBackend::Hdt);

        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB17);
        for (i, &update) in stream.iter().enumerate() {
            let a = apply(&mut scan, update);
            let b = apply(&mut hdt, update);
            prop_assert_eq!(&a, &b, "op {} ({:?}) diverged", i, update);
            if rng.gen_bool(0.05) {
                prop_assert_eq!(
                    scan.export_snapshot_incremental(),
                    hdt.export_snapshot_incremental(),
                    "dendrogram snapshots diverged after op {}",
                    i
                );
            }
        }
        prop_assert_eq!(scan.num_graph_edges(), hdt.num_graph_edges());
        prop_assert_eq!(scan.num_tree_edges(), hdt.num_tree_edges());
        // `graph_edges` iterates a hash map — compare as sets (one entry per pair).
        let sorted = |g: &DynamicGraphClustering| {
            let mut edges = g.graph_edges();
            edges.sort_by_key(|&(u, v, _, _)| (u, v));
            edges
        };
        prop_assert_eq!(sorted(&scan), sorted(&hdt));
        prop_assert_eq!(
            scan.export_snapshot_incremental(),
            hdt.export_snapshot_incremental(),
            "final dendrogram snapshots diverged"
        );
        // Work counters are the one permitted difference. The scan backend never promotes
        // levels, and the HDT backend answers every tree deletion the scan answered (plus
        // one internal search per tree-edge eviction replayed on insert).
        let (ws, wh) = (scan.take_work_counters(), hdt.take_work_counters());
        prop_assert_eq!(ws.level_promotions, 0);
        prop_assert!(
            wh.replacement_searches >= ws.replacement_searches,
            "HDT ran {} searches where the scan ran {}",
            wh.replacement_searches,
            ws.replacement_searches
        );
    }

    /// The pipeline-level identity: an all-HDT sharded service publishes views bit-identical
    /// (labels AND member lists) to an all-scan service fed the same stream — across shard
    /// counts, flush policies, and all three partitioners, at random mid-stream sync points
    /// and at the end. This drives the batch (coalesced) code path through both backends.
    #[test]
    fn hdt_service_is_bit_identical_to_scan_service(
        seed in 0u64..1 << 48,
        n in 6usize..40,
        shards in 1usize..5,
        num_ops in 20usize..280,
        policy_pick in 0usize..3,
        partitioner_pick in 0usize..3,
    ) {
        let policy = match policy_pick {
            0 => FlushPolicy::Manual,
            1 => FlushPolicy::EveryNOps(1 + (seed as usize) % 13),
            _ => FlushPolicy::OnRead,
        };
        let build = |backend: ForestBackend| {
            let builder = ServiceBuilder::new()
                .vertices(n)
                .shards(shards)
                .flush_policy(policy)
                .msf_backend(backend);
            let builder = match partitioner_pick {
                0 => builder.partitioner(HashPartitioner),
                1 => builder.partitioner(BlockPartitioner { block_size: 1 + n / shards }),
                _ => builder.stateful_partitioner(GreedyPartitioner::default()),
            };
            builder.build().expect("valid configuration")
        };
        let mut drivers =
            [build(ForestBackend::Scan).into_driver(), build(ForestBackend::Hdt).into_driver()];

        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, num_ops, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4D5F);
        for (i, &update) in stream.iter().enumerate() {
            for driver in &mut drivers {
                driver.service().ingest_handle().submit(update).expect("queue open");
            }
            if rng.gen_bool(0.06) {
                let [scan, hdt] = &mut drivers;
                let (a, b) = (drain(scan), drain(hdt));
                assert_views_bit_identical(&a, &b, &format!("after op {i}"));
            }
        }
        let [scan, hdt] = &mut drivers;
        let (a, b) = (drain(scan), drain(hdt));
        assert_views_bit_identical(&a, &b, "final state");
        // The streams really were applied in full on both sides.
        let (ms, mh) = (scan.service().metrics(), hdt.service().metrics());
        prop_assert_eq!(ms.ops_applied, mh.ops_applied);
        prop_assert_eq!(ms.edges_promoted, mh.edges_promoted);
    }

    /// The fault path on the new backend: an HDT service whose shard panics torn mid-flush
    /// quarantines it, keeps journaling ingest, and after `recover_shard` the replayed HDT
    /// engine is bit-identical to a **no-fault scan** service fed the identical stream —
    /// recovery and backend choice compose without observable effect.
    #[test]
    fn hdt_journal_replay_after_quarantine_matches_scan_oracle(
        seed in 0u64..1 << 48,
        n in 6usize..28,
        shards in 1usize..4,
        num_ops in 16usize..100,
        panic_shard in 0usize..4,
        panic_flush in 1u64..3,
        mixed in any::<bool>(),
    ) {
        let build = |faults: FaultPlan, backend: ForestBackend| {
            let mut builder = ServiceBuilder::new()
                .vertices(n)
                .shards(shards)
                .flush_policy(FlushPolicy::EveryNOps(3))
                .msf_backend(backend)
                .faults(faults);
            // Half the cases pin one shard back to scan: per-shard overrides must survive
            // quarantine + journal replay too.
            if mixed && backend == ForestBackend::Hdt {
                builder = builder.shard_msf_backend(shards - 1, ForestBackend::Scan);
            }
            builder.build().expect("valid configuration")
        };
        let spec = format!("flush_panic=shard:{panic_shard},flush:{panic_flush}");
        let mut faulted = build(FaultPlan::parse(&spec).expect("valid spec"), ForestBackend::Hdt)
            .into_driver();
        let mut oracle = build(FaultPlan::disabled(), ForestBackend::Scan).into_driver();

        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, num_ops, seed);
        for driver in [&mut faulted, &mut oracle] {
            let ingest = driver.service().ingest_handle();
            ingest.submit_all(stream.iter().copied()).expect("queue open");
            drain(driver);
        }

        let stale = faulted.service().published().stale_shards();
        for &shard in &stale {
            let report = faulted.recover_shard(shard).expect("replay of a valid stream");
            prop_assert!(report.rejected.is_empty(), "the stream was valid end-to-end");
        }
        prop_assert!(!faulted.service().published().is_stale());
        assert_views_bit_identical(
            &faulted.service().published(),
            &oracle.service().published(),
            &format!("seed={seed} spec={spec} stale={stale:?}"),
        );
    }
}

/// The environment knob: `DYNSLD_MSF_BACKEND=hdt` flips the default options — and with it
/// every engine the service builds — without any code change. (Set/removed locally here;
/// the CI matrix runs the whole suite under the variable.)
#[test]
fn env_variable_selects_the_default_backend() {
    // Serialize against any other env-reading test in this binary.
    std::env::set_var("DYNSLD_MSF_BACKEND", "hdt");
    let picked = DynSldOptions::default().msf_backend;
    std::env::set_var("DYNSLD_MSF_BACKEND", "scan");
    let scan_again = DynSldOptions::default().msf_backend;
    std::env::remove_var("DYNSLD_MSF_BACKEND");
    let unset = DynSldOptions::default().msf_backend;
    assert_eq!(picked, ForestBackend::Hdt);
    assert_eq!(scan_again, ForestBackend::Scan);
    assert_eq!(unset, ForestBackend::Scan);
    let g = DynamicGraphClustering::new(6);
    assert_eq!(g.backend(), ForestBackend::Scan);
}
