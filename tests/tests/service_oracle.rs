//! Service-level correctness: a sharded [`ClusterService`] must be *observationally
//! equivalent* to one [`ClusteringEngine`] fed the same stream — identical component counts,
//! `same_cluster` answers and cluster sizes at every threshold — because the shard edge sets
//! partition the graph and the merged snapshot glues per-shard clusterings back together with
//! a union-find pass. The property test below drives that equivalence through the handle
//! ingest pipeline over generated mixed insert/delete/re-weight workloads, random shard
//! counts, partitioners, flush policies, and random thresholds. (Bit-level pipeline
//! equivalence lives in `ingest_pipeline.rs`.)

use dynsld_engine::{
    BlockPartitioner, ClusterService, ClusteringEngine, FlushPolicy, FlusherDriver,
    GreedyPartitioner, HashPartitioner, ServiceBuilder, ServiceSnapshot, ShardId,
};
use dynsld_forest::workload::{split_graph_stream, GraphWorkloadBuilder};
use dynsld_forest::VertexId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Checks observational equivalence of the service's merged view and the oracle engine's
/// snapshot: `num_components`, `num_clusters`/`same_cluster` over all vertex pairs, and
/// `cluster_size` for every vertex, at each threshold.
fn assert_equivalent(
    merged: &ServiceSnapshot,
    oracle: &ClusteringEngine,
    thresholds: &[f64],
    context: &str,
) {
    let expected = oracle.snapshot();
    assert_eq!(
        merged.num_graph_edges(),
        expected.num_graph_edges(),
        "{context}: edge counts diverged"
    );
    assert_eq!(
        merged.num_components(),
        expected.num_components(),
        "{context}: component counts diverged"
    );
    let n = expected.num_vertices();
    for &tau in thresholds {
        assert_eq!(
            merged.num_clusters(tau),
            expected.num_clusters(tau),
            "{context}: cluster counts diverged at tau={tau}"
        );
        for i in 0..n as u32 {
            assert_eq!(
                merged.cluster_size(VertexId(i), tau),
                expected.cluster_size(VertexId(i), tau),
                "{context}: cluster size of v{i} diverged at tau={tau}"
            );
            for j in (i + 1)..n as u32 {
                assert_eq!(
                    merged.same_cluster(VertexId(i), VertexId(j), tau),
                    expected.same_cluster(VertexId(i), VertexId(j), tau),
                    "{context}: same_cluster(v{i}, v{j}) diverged at tau={tau}"
                );
            }
        }
    }
}

/// Drains and fully flushes the pipeline, returning the freshly published merged view — the
/// sync point at which service and oracle states are comparable.
fn sync(driver: &mut FlusherDriver) -> ServiceSnapshot {
    driver.pump().expect("validated stream");
    driver.flush().expect("validated stream");
    driver.service().published()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The PR-2 acceptance property, now through the pipeline: for every generated workload,
    /// a service with ≥ 2 shards reports identical clustering answers to a single engine fed
    /// the same stream — mid-stream (at random sync points) and at the end, at random
    /// thresholds.
    #[test]
    fn sharded_service_matches_single_engine_oracle(
        seed in 0u64..1 << 48,
        n in 6usize..40,
        shards in 2usize..6,
        num_ops in 20usize..320,
        policy_pick in 0usize..3,
        partitioner_pick in 0usize..3,
    ) {
        let policy = match policy_pick {
            0 => FlushPolicy::Manual,
            1 => FlushPolicy::EveryNOps(1 + (seed as usize) % 17),
            _ => FlushPolicy::OnRead,
        };
        let builder = ServiceBuilder::new().vertices(n).shards(shards).flush_policy(policy);
        // Pure partitioners (hash, block) and the stateful assign-on-first-sight greedy
        // partitioner must all be invisible to the merged answers.
        let builder = match partitioner_pick {
            0 => builder.partitioner(HashPartitioner),
            1 => builder.partitioner(BlockPartitioner { block_size: 1 + n / shards }),
            _ => builder.stateful_partitioner(GreedyPartitioner::default()),
        };
        let service = builder.build().expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();
        let mut oracle = ClusteringEngine::new(n);

        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
        let weight_scale = 8.0;
        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(weight_scale)
            .churn_stream(2 * n, num_ops, seed);
        // Random thresholds covering inside, outside, and past the weight range.
        let mut thresholds: Vec<f64> = (0..4)
            .map(|_| rng.gen::<f64>() * weight_scale * 1.25)
            .collect();
        thresholds.push(f64::INFINITY);

        for (i, &update) in stream.iter().enumerate() {
            ingest.submit(update).expect("queue open");
            oracle.submit(update).expect("generated stream is valid");
            // Compare at random mid-stream sync points, not just at the end.
            if rng.gen_bool(0.05) {
                let merged = sync(&mut driver);
                oracle.flush().expect("validated stream");
                assert_equivalent(&merged, &oracle, &thresholds, &format!("after op {i}"));
            }
        }
        let merged = sync(&mut driver);
        oracle.flush().expect("validated stream");
        assert_equivalent(&merged, &oracle, &thresholds, "final state");
        // Sanity: the sharded run actually exercised sharding, and nothing was rejected on
        // the way in.
        prop_assert!(driver.service().num_shards() >= 2);
        let m = driver.service().metrics();
        prop_assert_eq!(m.events_enqueued, stream.len() as u64);
        prop_assert_eq!(m.ops_applied + m.events_saved(), m.events_submitted);
    }

    /// Concurrent shard flushes (`threads ≥ 2`, fan-out over the work-stealing pool) keep the
    /// sharded service *exactly* equivalent to the single-engine oracle: the engines are
    /// independent and the per-shard reports are joined back in shard order, so concurrency
    /// must never be observable in the merged snapshots — mid-stream or final, at any
    /// threshold, across seeds.
    #[test]
    fn concurrent_flush_service_matches_single_engine_oracle(
        seed in 0u64..1 << 48,
        n in 6usize..40,
        shards in 2usize..6,
        threads in 2usize..5,
        num_ops in 20usize..240,
        on_read in any::<bool>(),
    ) {
        let policy = if on_read { FlushPolicy::OnRead } else { FlushPolicy::Manual };
        let service = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .threads(threads)
            .flush_policy(policy)
            .build()
            .expect("valid configuration");
        prop_assert_eq!(service.threads(), threads);
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();
        let mut oracle = ClusteringEngine::new(n);

        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
        let weight_scale = 8.0;
        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(weight_scale)
            .churn_stream(2 * n, num_ops, seed);
        let mut thresholds: Vec<f64> = (0..3)
            .map(|_| rng.gen::<f64>() * weight_scale * 1.25)
            .collect();
        thresholds.push(f64::INFINITY);

        for (i, &update) in stream.iter().enumerate() {
            ingest.submit(update).expect("queue open");
            oracle.submit(update).expect("generated stream is valid");
            // Frequent sync points so most flushes have several dirty shards to fan out.
            if rng.gen_bool(0.1) {
                let merged = sync(&mut driver);
                oracle.flush().expect("validated stream");
                assert_equivalent(&merged, &oracle, &thresholds, &format!("after op {i}"));
            }
        }
        let merged = sync(&mut driver);
        oracle.flush().expect("validated stream");
        assert_equivalent(&merged, &oracle, &thresholds, "final state");
    }

    /// The greedy partitioner under churn *and* vertex growth: the stream is ingested in
    /// random-size chunks with `add_vertices` interleaved mid-stream, and edges into the
    /// grown range arrive afterwards — first-sight assignment, table growth and spill
    /// routing must all stay invisible to the merged answers.
    #[test]
    fn greedy_partitioner_matches_oracle_across_midstream_growth(
        seed in 0u64..1 << 48,
        n in 8usize..32,
        shards in 2usize..6,
        grow in 1usize..6,
        num_ops in 30usize..200,
        balance_slack in 1usize..4,
    ) {
        let service = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .stateful_partitioner(GreedyPartitioner {
                balance_slack: 1.0 + balance_slack as f64 / 4.0,
            })
            .build()
            .expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();
        let mut oracle = ClusteringEngine::new(n);

        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9EED);
        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, num_ops, seed);
        let thresholds = [1.5, 4.0, 6.5, f64::INFINITY];

        // First half: plain churn with random sync points.
        let half = stream.len() / 2;
        for &update in &stream[..half] {
            ingest.submit(update).expect("queue open");
            oracle.submit(update).expect("generated stream is valid");
            if rng.gen_bool(0.08) {
                let merged = sync(&mut driver);
                oracle.flush().expect("validated stream");
                assert_equivalent(&merged, &oracle, &thresholds, "first half");
            }
        }
        // Grow mid-stream on both sides; the assignment table must grow in lockstep.
        let first_svc = driver.add_vertices(grow);
        let first_eng = oracle.add_vertices(grow);
        prop_assert_eq!(first_svc, first_eng);
        prop_assert_eq!(
            driver.service().assignment_table().expect("greedy owns a table").num_vertices(),
            n + grow
        );
        // Second half: remaining churn plus edges into the grown id range.
        for (i, &update) in stream[half..].iter().enumerate() {
            ingest.submit(update).expect("queue open");
            oracle.submit(update).expect("generated stream is valid");
            if i < grow {
                let u = VertexId((n + i) as u32);
                let v = VertexId(rng.gen_range(0..n as u32));
                let weight = rng.gen::<f64>() * 8.0;
                let ev = dynsld_engine::GraphUpdate::Insert { u, v, weight };
                ingest.submit(ev).expect("queue open");
                oracle.submit(ev).expect("new vertices accept edges");
            }
        }
        let merged = sync(&mut driver);
        oracle.flush().expect("validated stream");
        assert_equivalent(&merged, &oracle, &thresholds, "final state");
        // The stateful router actually assigned the vertices it routed.
        let m = driver.service().metrics();
        prop_assert!(m.vertices_assigned > 0);
        prop_assert_eq!(m.ops_applied + m.events_saved(), m.events_submitted);
    }

    /// Vertex growth mid-stream: growing the pipeline and the oracle identically keeps them
    /// observationally equivalent, and new vertices accept edges on both sides.
    #[test]
    fn vertex_growth_preserves_equivalence(
        seed in 0u64..1 << 48,
        n in 4usize..20,
        grow in 1usize..8,
        shards in 2usize..5,
    ) {
        let service = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .build()
            .expect("valid configuration");
        let ingest = service.ingest_handle();
        let mut driver = service.into_driver();
        let mut oracle = ClusteringEngine::new(n);
        let stream = GraphWorkloadBuilder::new(n).churn_stream(n, 40, seed);
        for &update in &stream {
            ingest.submit(update).unwrap();
            oracle.submit(update).unwrap();
        }
        sync(&mut driver);
        oracle.flush().unwrap();

        let first_svc = driver.add_vertices(grow);
        let first_eng = oracle.add_vertices(grow);
        prop_assert_eq!(first_svc, first_eng);
        prop_assert_eq!(driver.service().num_vertices(), n + grow);

        // Edges into the grown range work on both surfaces.
        let grown = n + grow;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        for k in 0..grow {
            let u = VertexId((n + k) as u32);
            let v = VertexId(rng.gen_range(0..n as u32));
            let weight = rng.gen::<f64>() * 10.0;
            let ev = dynsld_engine::GraphUpdate::Insert { u, v, weight };
            ingest.submit(ev).unwrap();
            oracle.submit(ev).unwrap();
        }
        let merged = sync(&mut driver);
        oracle.flush().unwrap();
        prop_assert_eq!(merged.num_vertices(), grown);
        assert_equivalent(&merged, &oracle, &[2.5, 7.5, f64::INFINITY], "after growth");
    }
}

/// Replays `stream` through a greedy 4-shard pipeline, draining in chunks of `chunk`, and
/// returns the final assignment table (cloned) plus per-shard routed-event loads.
fn greedy_replay(
    stream: &[dynsld_engine::GraphUpdate],
    chunk: usize,
) -> (dynsld_engine::AssignmentTable, Vec<(ShardId, u64)>) {
    let n = 48usize;
    let service = ServiceBuilder::new()
        .vertices(n)
        .shards(4)
        .stateful_partitioner(GreedyPartitioner::default())
        .queue_capacity(stream.len().max(1))
        .build()
        .expect("valid configuration");
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();
    for part in stream.chunks(chunk) {
        for &event in part {
            ingest.submit(event).expect("queue open");
        }
        driver.pump().expect("validated stream");
    }
    driver.flush().expect("validated stream");
    let svc = driver.service();
    (
        svc.assignment_table().expect("greedy owns a table").clone(),
        svc.shard_event_loads(),
    )
}

/// The first-sight assignments are a pure function of the *routed event order*, not of how
/// the driver happens to chunk its drains: replaying one stream through drains of size 1
/// (pump per event), a ragged middle size, and one whole-stream drain must produce identical
/// assignment tables, identical per-shard loads — and hence identical routing forever after.
#[test]
fn assignment_table_is_deterministic_across_drain_orderings() {
    let stream = GraphWorkloadBuilder::new(48)
        .weight_scale(5.0)
        .churn_stream(70, 500, 0xA551);
    let (table_1, loads_1) = greedy_replay(&stream, 1);
    let (table_7, loads_7) = greedy_replay(&stream, 7);
    let (table_all, loads_all) = greedy_replay(&stream, stream.len());
    assert_eq!(table_1, table_7, "chunk 1 vs 7 diverged");
    assert_eq!(table_1, table_all, "chunk 1 vs whole-stream diverged");
    assert_eq!(loads_1, loads_7);
    assert_eq!(loads_1, loads_all);
    // Every vertex the stream touched is pinned to a routed shard; untouched ones are not.
    let touched: std::collections::HashSet<u32> = stream
        .iter()
        .flat_map(|u| {
            let (a, b) = u.endpoints();
            [a.0, b.0]
        })
        .collect();
    for i in 0..48u32 {
        let pinned = table_1.get(VertexId(i));
        assert_eq!(pinned.is_some(), touched.contains(&i), "vertex {i}");
        if let Some(s) = pinned {
            assert!(s < 4);
        }
    }
    assert_eq!(table_1.assigned() as usize, touched.len());
}

/// Assignments never move once made: replaying the prefix of a stream pins exactly the same
/// shards the full replay ends up with (append-only means the suffix can only add pins).
#[test]
fn assignments_are_pinned_forever() {
    let stream = GraphWorkloadBuilder::new(48)
        .weight_scale(5.0)
        .churn_stream(70, 400, 0xF1F0);
    let (full, _) = greedy_replay(&stream, 13);
    let (prefix, _) = greedy_replay(&stream[..stream.len() / 2], 13);
    for i in 0..48u32 {
        if let Some(s) = prefix.get(VertexId(i)) {
            assert_eq!(
                full.get(VertexId(i)),
                Some(s),
                "vertex {i} moved after being pinned"
            );
        }
    }
}

/// Pre-splitting a stream with the forest helper and replaying each sub-stream into its own
/// single-shard pipeline reproduces the routed service's per-shard edge counts: the helper
/// and the router implement the same partition.
#[test]
fn split_helper_agrees_with_service_routing() {
    let n = 32usize;
    let shards = 4usize;
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(6.0)
        .churn_stream(60, 600, 0xCAFE);

    let service = ServiceBuilder::new()
        .vertices(n)
        .shards(shards)
        .partitioner(HashPartitioner)
        .queue_capacity(stream.len())
        .build()
        .expect("valid configuration");
    let ingest = service.ingest_handle();
    let mut driver = service.into_driver();
    ingest.submit_all(stream.iter().copied()).unwrap();
    driver.pump().unwrap();
    driver.flush().unwrap();

    use dynsld_engine::Partitioner;
    let split = split_graph_stream(&stream, shards, |v| HashPartitioner.shard_of(v, shards));
    assert_eq!(split.len(), stream.len());

    let replay = |part: &[dynsld_engine::GraphUpdate]| {
        let solo = ClusterService::single_shard(n);
        let solo_ingest = solo.ingest_handle();
        let mut solo_driver = solo.into_driver();
        for &event in part {
            solo_ingest.submit(event).unwrap();
            // Tiny drains on purpose: the routed comparison must not depend on drain size.
            solo_driver.pump().unwrap();
        }
        solo_driver.flush().unwrap();
        solo_driver.service().published().num_graph_edges()
    };

    for (i, part) in split.parts.iter().enumerate() {
        assert_eq!(
            replay(part),
            driver
                .service()
                .shard(ShardId::Routed(i))
                .snapshot()
                .num_graph_edges(),
            "shard {i} edge count diverged from the pre-split replay"
        );
    }
    assert_eq!(
        replay(&split.cross),
        driver
            .service()
            .shard(ShardId::Spill)
            .snapshot()
            .num_graph_edges(),
        "spill edge count diverged from the pre-split replay"
    );
}

/// Merged service snapshots are `Send + Sync` and frozen: reader threads holding clones (from
/// a `ReadHandle`) keep getting the epoch-vector-consistent answers while the driver keeps
/// flushing.
#[test]
fn merged_snapshots_serve_concurrent_readers_while_writing() {
    let n = 40usize;
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(6.0)
        .churn_stream(70, 600, 21);
    let service = ServiceBuilder::new()
        .vertices(n)
        .shards(3)
        .build()
        .expect("valid configuration");
    let ingest = service.ingest_handle();
    let reader = service.read_handle();
    let mut driver = service.into_driver();

    let mut handles = Vec::new();
    for chunk in stream.chunks(30) {
        for &u in chunk {
            ingest.submit(u).unwrap();
        }
        driver.pump().unwrap();
        driver.flush().unwrap();
        let snap = reader.snapshot();
        handles.push(std::thread::spawn(move || {
            let epochs = snap.epochs();
            for tau in [0.5, 2.0, 3.5, 5.0, f64::INFINITY] {
                let fc = snap.flat_clustering(tau);
                let total: usize = fc.clusters.iter().map(Vec::len).sum();
                assert_eq!(
                    total,
                    snap.num_vertices(),
                    "partition must cover all vertices"
                );
            }
            assert_eq!(
                snap.num_clusters(f64::INFINITY),
                snap.num_components(),
                "at tau=inf clusters are exactly the components"
            );
            assert_eq!(snap.epochs(), epochs, "snapshot epoch vector drifted");
            epochs
        }));
    }
    let epochs: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Epoch vectors are non-decreasing shard-wise across flush rounds.
    for w in epochs.windows(2) {
        assert!(w[0].iter().zip(&w[1]).all(|(a, b)| a <= b));
    }
}
