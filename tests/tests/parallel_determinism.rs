//! Thread-count independence: the service's published clusterings must be a pure function of
//! the event stream, never of the pool size or flush scheduling.
//!
//! Two pillars make this hold and are pinned down here:
//!
//! * the (weight, edge-pair) tie-breaking introduced in PR 1 makes every MSF/dendrogram
//!   decision deterministic, so each shard engine computes the same state no matter when or
//!   on which worker its flush runs;
//! * every parallel primitive in the `rayon` shim (and the service's shard-order report
//!   merge) is order-preserving, so fan-out never reorders observable results.
//!
//! The tests compare a strictly sequential service (`threads(1)` — the exact pre-pool code
//! path) against a concurrent one (`threads(4)`) on identical streams, both driven through
//! the handle-based ingest pipeline: epoch vectors, flush reports and full merged clusterings
//! must be identical. They are meaningful at any pool size — with `DYNSLD_THREADS=1` both
//! runs are sequential and the comparison is trivial; with a multi-threaded pool (the
//! `DYNSLD_THREADS=4` CI run) it is a real scheduling-independence check.

use dynsld_engine::{
    BlockPartitioner, FlushPolicy, FlusherDriver, IngestHandle, ServiceBuilder, ServiceSnapshot,
};
use dynsld_forest::workload::GraphWorkloadBuilder;

/// Builds one pipeline (handle + driver) with the given flush parallelism.
fn pipeline(
    n: usize,
    shards: usize,
    policy: FlushPolicy,
    threads: usize,
) -> (IngestHandle, FlusherDriver) {
    let service = ServiceBuilder::new()
        .vertices(n)
        .shards(shards)
        .partitioner(BlockPartitioner {
            block_size: 1 + n / shards,
        })
        .flush_policy(policy)
        .threads(threads)
        .build()
        .expect("valid test configuration");
    let ingest = service.ingest_handle();
    (ingest, service.into_driver())
}

/// Asserts the two snapshots answer identically: same epoch vector, same edge counts, and
/// byte-for-byte identical canonical clusterings at every probed threshold.
fn assert_identical(a: &ServiceSnapshot, b: &ServiceSnapshot, thresholds: &[f64], context: &str) {
    assert_eq!(a.epochs(), b.epochs(), "{context}: epoch vectors diverged");
    assert_eq!(
        a.num_graph_edges(),
        b.num_graph_edges(),
        "{context}: edge counts diverged"
    );
    assert_eq!(
        a.num_components(),
        b.num_components(),
        "{context}: component counts diverged"
    );
    for &tau in thresholds {
        let (ca, cb) = (a.flat_clustering(tau), b.flat_clustering(tau));
        assert_eq!(
            ca.labels, cb.labels,
            "{context}: cluster labels diverged at tau={tau}"
        );
        assert_eq!(
            ca.clusters, cb.clusters,
            "{context}: cluster members diverged at tau={tau}"
        );
    }
}

#[test]
fn threads_1_and_threads_4_produce_identical_clusterings() {
    // Ask for a 4-thread pool up front; DYNSLD_THREADS (the CI matrix) still wins, and the
    // comparison below must hold either way.
    rayon::configure_threads(4);
    let thresholds = [0.75, 2.0, 4.5, 7.0, f64::INFINITY];
    for seed in [3u64, 0xBAD5EED, 0x5CA1AB1E] {
        let n = 48;
        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(3 * n, 700, seed);
        let (seq_in, mut seq) = pipeline(n, 4, FlushPolicy::Manual, 1);
        let (par_in, mut par) = pipeline(n, 4, FlushPolicy::Manual, 4);
        assert_eq!(seq.service().threads(), 1);
        assert_eq!(par.service().threads(), 4);
        for (i, chunk) in stream.chunks(64).enumerate() {
            for &update in chunk {
                seq_in.submit(update).expect("queue open");
                par_in.submit(update).expect("queue open");
            }
            seq.pump().expect("validated stream");
            par.pump().expect("validated stream");
            let rs = seq.flush().expect("validated stream");
            let rp = par.flush().expect("validated stream");
            assert_eq!(rs.epochs(), rp.epochs(), "flush round {i} epochs diverged");
            assert_eq!(rs.ops_applied(), rp.ops_applied());
            assert_eq!(rs.fast_path(), rp.fast_path());
            assert_eq!(rs.fallback(), rp.fallback());
            assert_eq!(rs.spill_routing_share(), rp.spill_routing_share());
            // Timing telemetry is populated on both sides — a wall clock for the whole
            // flush, per-shard busy times underneath it — and respects the invariant
            // chain wall >= slowest shard, sum of shards >= slowest shard. Absolute
            // values differ between the runs (that is the point of measuring), so only
            // the structure is compared.
            for report in [&rs, &rp] {
                assert!(
                    report.wall_time > std::time::Duration::ZERO,
                    "flush round {i}: wall time not populated"
                );
                if report.ops_applied() > 0 {
                    assert!(
                        report.slowest_shard_time() > std::time::Duration::ZERO,
                        "flush round {i}: per-shard durations not populated"
                    );
                }
                assert!(report.shard_time_sum() >= report.slowest_shard_time());
                assert!(report.wall_time >= report.slowest_shard_time());
                assert!(
                    report.phase_totals().total() <= report.shard_time_sum(),
                    "flush round {i}: phase breakdown exceeds shard busy time"
                );
            }
            assert_identical(
                &seq.service().published(),
                &par.service().published(),
                &thresholds,
                &format!("seed {seed:#x}, flush round {i}"),
            );
        }
    }
}

#[test]
fn on_read_policy_is_thread_count_independent() {
    rayon::configure_threads(4);
    let n = 32;
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(6.0)
        .churn_stream(2 * n, 400, 0xD15EA5E);
    let (seq_in, mut seq) = pipeline(n, 3, FlushPolicy::OnRead, 1);
    let (par_in, mut par) = pipeline(n, 3, FlushPolicy::OnRead, 4);
    for (i, &update) in stream.iter().enumerate() {
        seq_in.submit(update).expect("queue open");
        par_in.submit(update).expect("queue open");
        if i % 37 == 0 {
            // Under OnRead, a pump drains *and* publishes everything pending — concurrently
            // on `par`.
            seq.pump().expect("validated stream");
            par.pump().expect("validated stream");
            assert_identical(
                &seq.service().published(),
                &par.service().published(),
                &[1.5, 4.0, f64::INFINITY],
                &format!("read at op {i}"),
            );
        }
    }
    seq.pump().expect("validated stream");
    par.pump().expect("validated stream");
    assert_identical(
        &seq.service().published(),
        &par.service().published(),
        &[1.5, 4.0, f64::INFINITY],
        "final read",
    );
}
