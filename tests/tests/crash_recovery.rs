//! Durability: a process crash at an arbitrary point — right after a WAL append, mid
//! checkpoint write (leaving the newest checkpoint corrupt), or tearing the WAL's final
//! record — must lose nothing that was durable and invent nothing that was not. The pin:
//! rebuild the service from the same directory and its published view is **bit-identical**
//! (canonical labels AND sorted member lists) to a no-crash oracle fed exactly the durable
//! prefix of the stream, across shard counts × flush policies × partitioners × MSF
//! backends, with vertex growth journaled mid-stream.

use dynsld::ForestBackend;
use dynsld_engine::{
    ClusterService, FaultPlan, FlushPolicy, FlusherDriver, GraphUpdate, GreedyPartitioner,
    HashPartitioner, ServiceBuilder, ServiceSnapshot,
};
use dynsld_forest::workload::GraphWorkloadBuilder;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thresholds the equivalence is checked at.
const TAUS: [f64; 4] = [1.0, 2.0, 5.0, f64::INFINITY];

/// The logical record stream a durable service journals: routed edge events plus vertex
/// growth, in submission order — exactly the WAL's record order.
#[derive(Clone, Copy, Debug)]
enum Op {
    Event(GraphUpdate),
    Grow(usize),
}

fn unique_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dynsld-crash-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn drain(driver: &mut FlusherDriver) {
    driver.pump().expect("validated stream");
    driver
        .flush()
        .expect("flush isolates faults, never errors on them");
}

/// Labels and member lists of two published views must agree exactly at every threshold.
fn assert_views_bit_identical(a: &ServiceSnapshot, b: &ServiceSnapshot, context: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{context}");
    assert_eq!(a.num_graph_edges(), b.num_graph_edges(), "{context}");
    for tau in TAUS {
        let (ca, cb) = (a.flat_clustering(tau), b.flat_clustering(tau));
        assert_eq!(
            ca.labels, cb.labels,
            "{context}: labels diverged at tau={tau}"
        );
        assert_eq!(
            ca.clusters, cb.clusters,
            "{context}: member lists diverged at tau={tau}"
        );
    }
}

/// Feeds the first `count` logical records through a service's normal batch paths,
/// draining every `chunk` events so checkpoint opportunities recur mid-stream. The final
/// clustering is a pure function of the surviving record prefix, so the oracle may use
/// any drain pattern — this one is shared for symmetry.
fn feed_prefix(driver: &mut FlusherDriver, ops: &[Op], count: usize, chunk: usize) {
    let ingest = driver.service().ingest_handle();
    let mut since_drain = 0;
    for op in &ops[..count] {
        match *op {
            Op::Event(event) => {
                ingest.submit(event).expect("queue open");
                since_drain += 1;
                if since_drain >= chunk {
                    drain(driver);
                    since_drain = 0;
                }
            }
            Op::Grow(k) => {
                drain(driver); // growth cuts a drain boundary, exactly like the first life
                since_drain = 0;
                driver.add_vertices(k);
            }
        }
    }
    drain(driver);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The PR's acceptance property. A durable service killed at an arbitrary injected
    /// crash point — after the `c`-th WAL append, tearing the `c`-th WAL record, or
    /// corrupting a checkpoint write (with and without an older valid checkpoint to fall
    /// back to) — recovers on rebuild to exactly the state of a no-crash oracle fed the
    /// durable prefix `ops[..records_durable]`, across shards × flush policies ×
    /// partitioners × MSF backends.
    #[test]
    fn crash_anywhere_recovers_bit_identical_to_the_durable_prefix_oracle(
        seed in 0u64..1 << 48,
        n in 6usize..32,
        shards in 1usize..4,
        num_ops in 16usize..80,
        policy_pick in 0usize..3,
        greedy in any::<bool>(),
        hdt in any::<bool>(),
        crash_mode in 0usize..4,
        crash_at in 1u64..48,
        growth in 0usize..3,
        ckpt_pick in 0usize..3,
        chunk in 3usize..9,
    ) {
        let policy = match policy_pick {
            0 => FlushPolicy::Manual,
            1 => FlushPolicy::EveryNOps(1),
            _ => FlushPolicy::EveryNOps(4),
        };
        // The four pinned crash points. Checkpoint cadence is forced where the scenario
        // needs it: `mid_checkpoint` with cadence 1 corrupts a checkpoint that *has* valid
        // predecessors (recovery must fall back past the corrupt newest); with a sparser
        // cadence the corrupt write is the first, so recovery falls back to WAL-only.
        let (spec, checkpoint_every) = match crash_mode {
            0 => (format!("crash=after_wal:{crash_at}"), [1, 8, u64::MAX][ckpt_pick]),
            1 => ("crash=mid_checkpoint:1".to_string(), [4, 8, 16][ckpt_pick]),
            2 => (format!("wal_torn=at:{crash_at}"), [1, 8, u64::MAX][ckpt_pick]),
            _ => (format!("crash=mid_checkpoint:{}", 2 + crash_at % 4), 1),
        };
        let build = |durable: Option<&PathBuf>, faults_spec: Option<&str>| {
            let mut builder = ServiceBuilder::new()
                .vertices(n)
                .shards(shards)
                .flush_policy(policy)
                .msf_backend(if hdt { ForestBackend::Hdt } else { ForestBackend::Scan })
                .checkpoint_every_records(checkpoint_every);
            if let Some(dir) = durable {
                builder = builder.durable(dir);
            }
            // An explicit plan always wins over `DYNSLD_FAULTS`, so CI's ambient
            // crash-injection spec can't double-kill the first life or corrupt the
            // recovery/oracle runs.
            builder = match faults_spec {
                Some(spec) => builder.faults_spec(spec),
                None => builder.faults(FaultPlan::disabled()),
            };
            let builder = if greedy {
                builder.stateful_partitioner(GreedyPartitioner::default())
            } else {
                builder.partitioner(HashPartitioner)
            };
            builder.build().expect("valid configuration")
        };

        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, num_ops, seed);
        let split = stream.len() / 2;
        let mut ops: Vec<Op> = stream[..split].iter().copied().map(Op::Event).collect();
        if growth > 0 {
            ops.push(Op::Grow(growth));
        }
        ops.extend(stream[split..].iter().copied().map(Op::Event));

        // First life: journal the whole stream; the injected fault kills the process at
        // its crash point (everything after it is lost, exactly like a real crash).
        let dir = unique_dir("prop");
        {
            let mut driver = FlusherDriver::new(build(Some(&dir), Some(&spec)));
            feed_prefix(&mut driver, &ops, ops.len(), chunk);
        }

        // Second life: recovery loads the newest valid checkpoint (falling back past a
        // corrupt one) and replays the WAL tail through the normal batch paths.
        let recovered = build(Some(&dir), None);
        let report = recovered.durability().expect("durable service").clone();
        prop_assert!(report.replay_rejected.is_empty(), "the stream was valid end-to-end");
        let durable = report.records_durable as usize;
        prop_assert!(durable <= ops.len(), "nothing beyond the stream can be durable");
        match crash_mode {
            // Crash after the c-th append: that record IS durable, nothing later is.
            0 => prop_assert_eq!(durable, ops.len().min(crash_at as usize)),
            // Torn c-th record: truncated on open, so the durable prefix stops before it.
            2 => {
                if (crash_at as usize) <= ops.len() {
                    prop_assert_eq!(durable, crash_at as usize - 1);
                    prop_assert_eq!(report.torn_tails_truncated, 1);
                } else {
                    prop_assert_eq!(durable, ops.len());
                }
            }
            // A corrupt checkpoint write kills the process at a drain boundary: the
            // records appended up to that boundary stay durable, everything after the
            // death is lost. Where the boundary falls depends on the checkpoint gating,
            // so the exact count is data-dependent — the oracle equality below is the pin.
            _ => {}
        }
        if crash_mode == 3 && report.corrupt_checkpoints_skipped > 0 {
            // Cadence 1 wrote valid checkpoints before the corrupt one: recovery must have
            // fallen back to one of them, not to WAL-only replay.
            prop_assert!(report.checkpoint_lsn > 0, "an older valid checkpoint existed");
        }

        // The oracle never crashed and was only ever shown the durable prefix.
        let mut oracle = FlusherDriver::new(build(None, None));
        feed_prefix(&mut oracle, &ops, durable, chunk);
        assert_views_bit_identical(
            &recovered.published(),
            &oracle.service().published(),
            &format!(
                "seed={seed} spec={spec} policy={policy:?} ckpt_every={checkpoint_every} \
                 durable={durable}/{} report={report:?}",
                ops.len()
            ),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Deterministic spot-check of the full lifecycle: ingest → checkpoint → more ingest →
/// hard drop → recover → **keep going**. The recovered service is not just a readable
/// museum piece — it accepts new events, flushes, checkpoints again, and a third life
/// recovers from the second's artifacts.
#[test]
fn recovered_service_keeps_ingesting_checkpointing_and_recovering() {
    let n = 16;
    let dir = unique_dir("relay");
    let build = || {
        ServiceBuilder::new()
            .vertices(n)
            .shards(2)
            .flush_policy(FlushPolicy::Manual)
            .faults(FaultPlan::disabled())
            .durable(&dir)
            .checkpoint_every_records(4)
            .build()
            .expect("valid configuration")
    };
    let stream = GraphWorkloadBuilder::new(n)
        .weight_scale(8.0)
        .churn_stream(2 * n, 36, 42);
    let (a, b, c) = (stream.len() / 3, 2 * stream.len() / 3, stream.len());

    {
        let mut driver = FlusherDriver::new(build());
        let ingest = driver.service().ingest_handle();
        ingest.submit_all(stream[..a].iter().copied()).unwrap();
        drain(&mut driver);
        assert!(driver.service().metrics().checkpoints_written >= 1);
    } // crash #1

    {
        let service = build();
        assert!(service.durability().expect("durable").recovered);
        let mut driver = FlusherDriver::new(service);
        let ingest = driver.service().ingest_handle();
        ingest.submit_all(stream[a..b].iter().copied()).unwrap();
        drain(&mut driver);
    } // crash #2

    let third = build();
    let report = third.durability().expect("durable").clone();
    assert!(report.recovered);
    assert_eq!(report.records_durable, b as u64);

    // Third life keeps serving AND ingesting: finish the stream and compare against a
    // never-crashed oracle fed all of it.
    let mut driver = FlusherDriver::new(third);
    let ingest = driver.service().ingest_handle();
    ingest.submit_all(stream[b..c].iter().copied()).unwrap();
    drain(&mut driver);

    let oracle = ServiceBuilder::new()
        .vertices(n)
        .shards(2)
        .flush_policy(FlushPolicy::Manual)
        .build()
        .expect("valid configuration");
    let mut oracle = FlusherDriver::new(oracle);
    let oracle_ingest = oracle.service().ingest_handle();
    oracle_ingest.submit_all(stream.iter().copied()).unwrap();
    drain(&mut oracle);

    assert_views_bit_identical(
        &driver.service().published(),
        &oracle.service().published(),
        "three-life relay",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery must bump the published revision past anything the first life served, so a
/// cached validator (an ETag derived from the revision) can never alias the recovered
/// view with a pre-crash one.
#[test]
fn recovery_republishes_at_a_fresh_revision() {
    let n = 8;
    let dir = unique_dir("revision");
    let first_revision;
    {
        let service = ServiceBuilder::new()
            .vertices(n)
            .shards(2)
            .flush_policy(FlushPolicy::Manual)
            .faults(FaultPlan::disabled())
            .durable(&dir)
            .checkpoint_every_records(1)
            .build()
            .expect("valid configuration");
        let mut driver = FlusherDriver::new(service);
        let ingest = driver.service().ingest_handle();
        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(4.0)
            .churn_stream(2 * n, 12, 7);
        for &event in &stream {
            ingest.submit(event).unwrap();
            drain(&mut driver);
        }
        first_revision = driver.service().published().revision();
        assert!(first_revision > 0);
    }
    let recovered = ServiceBuilder::new()
        .vertices(n)
        .shards(2)
        .flush_policy(FlushPolicy::Manual)
        .faults(FaultPlan::disabled())
        .durable(&dir)
        .build()
        .expect("valid configuration");
    assert!(
        recovered.published().revision() > first_revision,
        "recovery must republish past every revision the first life served"
    );
    let report = recovered.durability().expect("durable");
    assert!(report.recovered);
    assert!(
        report.checkpoint_lsn > 0,
        "checkpoints were written every record"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `ClusterService` must still build and serve when the durable directory is brand new
/// (cold start) — recovery is strictly opt-in on finding artifacts, never an error.
#[test]
fn cold_start_on_an_empty_directory_is_not_a_recovery() {
    let dir = unique_dir("cold");
    let service = ServiceBuilder::new()
        .vertices(4)
        .faults(FaultPlan::disabled())
        .durable(&dir)
        .build()
        .expect("valid configuration");
    let report = service.durability().expect("durable");
    assert!(
        !report.recovered,
        "an empty directory has nothing to recover"
    );
    assert_eq!(report.records_durable, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// The oracle equality above needs `ClusterService::published` and `durability` to be
// callable from an integration test; keep a compile-time pin that they are public API.
const _: fn(&ClusterService) = |svc| {
    let _ = svc.published();
    let _ = svc.durability();
};
