//! Delta-serving correctness: replaying the delta chain `r0 → rN` onto the full snapshot
//! taken at revision `r0` must be **bit-identical** to the full snapshot at `rN` — the
//! per-shard dendrogram exports (records, order, versions), the canonical cluster labels,
//! and the sorted member lists. The properties below drive that equivalence across shard
//! counts, flush policies, greedy/hash partitioners, mixed churn with interleaved vertex
//! growth, and the ring-ageout → full-snapshot fallback path.

use dynsld::DendrogramSnapshot;
use dynsld_engine::{
    FlushPolicy, FlusherDriver, GreedyPartitioner, HashPartitioner, ServiceBuilder,
    ServiceSnapshot, SyncResponse,
};
use dynsld_forest::workload::GraphWorkloadBuilder;
use dynsld_serve::{Mirror, RefreshReason, Subscriber, SyncOutcome};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Thresholds the service tracks in its deltas and the tests compare labels at.
const TAUS: [f64; 3] = [2.0, 5.0, f64::INFINITY];

fn drain(driver: &mut FlusherDriver) {
    driver.pump().expect("validated stream");
    driver.flush().expect("validated stream");
}

/// Asserts a replayed mirror answers exactly like a published view: same revision and
/// epochs, bit-identical per-shard exports, identical labels and member lists at every
/// threshold in [`TAUS`].
fn assert_bit_identical(mirror: &Mirror, published: &ServiceSnapshot, context: &str) {
    assert_eq!(mirror.revision(), published.revision(), "{context}");
    assert_eq!(mirror.epochs(), published.epochs(), "{context}");
    assert_eq!(
        mirror.num_graph_edges(),
        published.num_graph_edges(),
        "{context}"
    );
    for (i, (replayed, shard)) in mirror
        .shards()
        .iter()
        .zip(published.shard_snapshots())
        .enumerate()
    {
        assert_eq!(
            replayed,
            shard.dendrogram(),
            "{context}: shard {i} diverged"
        );
    }
    for tau in TAUS {
        let a = mirror.flat_clustering(tau);
        let b = published.flat_clustering(tau);
        assert_eq!(
            a.labels, b.labels,
            "{context}: labels diverged at tau={tau}"
        );
        assert_eq!(
            a.clusters, b.clusters,
            "{context}: member lists diverged at tau={tau}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The PR's acceptance property. A subscriber that captured the full view at `r0` and
    /// then syncs through delta chains only must end bit-identical to the current full
    /// snapshot, across shards × flush policies × greedy/hash partitioners, through churn
    /// and vertex growth. The tracked-threshold relabels must also replay the label vectors
    /// exactly (nothing changed that was not reported changed).
    #[test]
    fn delta_chain_replay_is_bit_identical_to_full_snapshot(
        seed in 0u64..1 << 48,
        n in 6usize..32,
        shards in 1usize..4,
        num_ops in 16usize..160,
        policy_pick in 0usize..4,
        greedy in any::<bool>(),
        growth in 0usize..3,
    ) {
        let policy = match policy_pick {
            0 => FlushPolicy::Manual,
            1 => FlushPolicy::EveryNOps(1),
            2 => FlushPolicy::EveryNOps(4),
            _ => FlushPolicy::OnRead,
        };
        let builder = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .flush_policy(policy)
            .delta_ring(4096) // larger than any revision count this test can produce
            .track_thresholds(TAUS);
        let builder = if greedy {
            builder.stateful_partitioner(GreedyPartitioner::default())
        } else {
            builder.partitioner(HashPartitioner)
        };
        let service = builder.build().expect("valid configuration");
        let ingest = service.ingest_handle();
        let read = service.read_handle();
        let mut driver = service.into_driver();

        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, num_ops, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xDE17A);

        // Capture the full view at some mid-stream revision r0.
        let split = stream.len() / 3;
        for &update in &stream[..split] {
            ingest.submit(update).expect("queue open");
        }
        drain(&mut driver);
        let SyncResponse::Full(base) = read.sync_from(None) else {
            panic!("a sync without a base revision is always a full snapshot");
        };
        let mut replayed: Vec<DendrogramSnapshot> = base
            .shard_snapshots()
            .iter()
            .map(|s| s.dendrogram().clone())
            .collect();
        // Label vectors at r0, advanced below through the relabel records alone.
        let mut labels: Vec<Vec<usize>> =
            TAUS.iter().map(|&tau| base.flat_clustering(tau).labels.clone()).collect();

        // Keep churning, with random flush points and (maybe) vertex growth mid-stream.
        for (i, &update) in stream[split..].iter().enumerate() {
            ingest.submit(update).expect("queue open");
            if rng.gen_bool(0.15) {
                drain(&mut driver);
            }
            if growth > 0 && i == 5 {
                drain(&mut driver);
                driver.add_vertices(growth);
            }
        }
        drain(&mut driver);

        let now = read.snapshot();
        if now.revision() == base.revision() {
            return; // tiny tail: nothing published after r0, nothing to replay
        }
        let SyncResponse::Delta(patch) = read.sync_from(Some(base.revision())) else {
            panic!("the ring is oversized; a delta chain must be available");
        };
        prop_assert_eq!(patch.from_revision, base.revision());
        prop_assert_eq!(patch.to_revision, now.revision());

        // Replay the raw per-shard exports...
        patch.apply_to_shards(&mut replayed);
        for (shard, published) in replayed.iter().zip(now.shard_snapshots()) {
            prop_assert_eq!(shard, published.dendrogram());
        }
        // ...and the tracked-threshold label vectors, through the relabel records alone.
        for delta in &patch.deltas {
            let grown = delta.shards[0].num_vertices;
            for (slot, &tau) in labels.iter_mut().zip(&TAUS) {
                let relabel = delta
                    .relabels
                    .iter()
                    .find(|r| r.tau == tau)
                    .expect("every tracked threshold appears in every delta");
                slot.resize(grown, usize::MAX); // new vertices are always in `changed`
                for &(v, label) in &relabel.changed {
                    slot[v.index()] = label;
                }
            }
        }
        for (slot, &tau) in labels.iter().zip(&TAUS) {
            prop_assert_eq!(slot, &now.flat_clustering(tau).labels);
        }

        // The Mirror path (what subscribers actually run) agrees too.
        let mut mirror = Mirror::from_snapshot(&base);
        mirror.apply(&patch).expect("chain is anchored at the mirror's revision");
        assert_bit_identical(&mirror, &now, "mirror replay");
    }

    /// A frequently-syncing subscriber rides deltas the whole way and stays bit-identical
    /// at every sync point; a subscriber that falls out of a tiny ring refreshes with a
    /// full snapshot (reported as such) and is bit-identical again afterwards.
    #[test]
    fn subscribers_stay_identical_and_survive_ring_ageout(
        seed in 0u64..1 << 48,
        n in 6usize..24,
        shards in 1usize..3,
        num_ops in 24usize..120,
    ) {
        let service = ServiceBuilder::new()
            .vertices(n)
            .shards(shards)
            .flush_policy(FlushPolicy::Manual)
            .delta_ring(2) // tiny: lagging subscribers age out quickly
            .build()
            .expect("valid configuration");
        let ingest = service.ingest_handle();
        let read = service.read_handle();
        let mut fresh = Subscriber::new(read.clone());
        let mut laggard = Subscriber::new(read.clone());
        let mut driver = service.into_driver();

        fresh.sync();
        laggard.sync();

        let stream = GraphWorkloadBuilder::new(n)
            .weight_scale(8.0)
            .churn_stream(2 * n, num_ops, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA6E0);
        let mut aged_out = false;
        for &update in &stream {
            ingest.submit(update).expect("queue open");
            if rng.gen_bool(0.3) {
                drain(&mut driver);
                // The fresh subscriber is at most one revision behind: never a full pull.
                let report = fresh.sync();
                prop_assert!(!matches!(
                    report.outcome,
                    SyncOutcome::Refreshed { reason: RefreshReason::AgedOut }
                ));
                assert_bit_identical(fresh.mirror().unwrap(), &read.snapshot(), "fresh");
            }
        }
        drain(&mut driver);
        fresh.sync();
        assert_bit_identical(fresh.mirror().unwrap(), &read.snapshot(), "fresh, final");

        // The laggard slept through every publish; with a 2-deep ring it must refresh in
        // full once more than 2 revisions passed.
        let behind = read.revision() - laggard.revision().unwrap();
        let report = laggard.sync();
        if behind > 2 {
            prop_assert!(matches!(
                report.outcome,
                SyncOutcome::Refreshed { reason: RefreshReason::AgedOut }
            ));
            aged_out = true;
        }
        assert_bit_identical(laggard.mirror().unwrap(), &read.snapshot(), "laggard");
        let metrics = driver.service().metrics();
        prop_assert_eq!(metrics.full_fallbacks, u64::from(aged_out));
        prop_assert!(metrics.deltas_served > 0 || behind == 0);
    }
}
