//! Integration test crate (see `tests/` subdirectory for the tests themselves).
